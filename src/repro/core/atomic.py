"""GRAB — the atomic-transaction co-allocator (§3.2, §4.1).

"The most straightforward co-allocation strategy ...  All required
resources are specified at the time the request is made.  The request
succeeds if all resources required by the application are allocated.
Otherwise, the request fails and none of the resources are acquired."

GRAB is implemented over the same two-phase-commit machinery as DUROC
with every subjob forced ``required`` and commit issued immediately:
any failure or timeout aborts the transaction and cancels everything
already acquired.  Its API is exactly what the paper describes — "an
allocation function on the client side, which returns success or
failure, and a barrier function for use within the application" (the
barrier function is shared: :func:`repro.core.applib.barrier`).
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any, Generator, Optional

import numpy as np

from repro.core.coallocator import Duroc, DurocJob, DurocResult
from repro.core.request import CoAllocationRequest, SubjobSpec, SubjobType
from repro.errors import AllocationAborted
from repro.gsi.auth import AuthConfig
from repro.gsi.credentials import Credential
from repro.net.network import Network
from repro.resilience import BreakerBoard, RetryPolicy
from repro.simcore.tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.environment import Environment
    from repro.simcore.events import Event


class Grab:
    """Atomic all-or-nothing co-allocation."""

    def __init__(
        self,
        network: Network,
        host: str,
        credential: Credential,
        auth: Optional[AuthConfig] = None,
        default_subjob_timeout: float = 300.0,
        submit_timeout: float = 60.0,
        tracer: Optional[Tracer] = None,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        breakers: Optional[BreakerBoard] = None,
    ) -> None:
        self._duroc = Duroc(
            network,
            host,
            credential,
            auth=auth,
            default_subjob_timeout=default_subjob_timeout,
            submit_timeout=submit_timeout,
            tracer=tracer,
            retry=retry,
            rng=rng,
            breakers=breakers,
        )

    @property
    def env(self) -> "Environment":
        return self._duroc.env

    def allocate(
        self, request: CoAllocationRequest
    ) -> "Generator[Event, Any, DurocResult]":
        """Generator: the atomic allocation function.

        Returns a :class:`DurocResult` if *every* subjob started, or
        raises :class:`AllocationAborted` — in which case all acquired
        resources have been released.  "The contents of a co-allocation
        request ... may not be changed once the request has been
        initiated": the returned job handle is not exposed, so no edits
        are possible.
        """
        forced = CoAllocationRequest(
            [self._force_required(spec) for spec in request]
        )
        job: DurocJob = self._duroc.submit(forced)
        job._probe("duroc.atomic")
        result: DurocResult = yield from job.commit()
        return result

    @staticmethod
    def _force_required(spec: SubjobSpec) -> SubjobSpec:
        if spec.start_type is SubjobType.REQUIRED:
            return spec
        return replace(spec, start_type=SubjobType.REQUIRED)
