"""DUROC monitoring callbacks (§3.4).

"The monitoring interface should allow for state transitions to be
signalled to the monitoring program, which can then act upon this
transition in a manner that is appropriate for the application."

Events cover both per-subjob transitions and global request
transitions.  Handlers run synchronously at the instant of the
transition (callbacks execute atomically in simulated time) and may
invoke co-allocator edit operations — that is exactly how interactive
failure handling works.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Optional

#: Notifications kept in :attr:`CallbackDispatcher.log`.  Generously
#: above any single request's event count (a request emits tens of
#: notifications), but bounded so an always-on orchestrator does not
#: retain every notification it ever fanned out.
LOG_MAX = 4096


class DurocEvent(str, Enum):
    SUBJOB_SUBMITTED = "subjob_submitted"
    SUBJOB_CHECKIN = "subjob_checkin"          # all processes checked in OK
    SUBJOB_FAILED = "subjob_failed"            # GRAM error or startup failure
    SUBJOB_TIMEOUT = "subjob_timeout"          # no check-in within deadline
    SUBJOB_RELEASED = "subjob_released"
    SUBJOB_DELETED = "subjob_deleted"
    REQUEST_COMMITTED = "request_committed"
    REQUEST_RELEASED = "request_released"
    REQUEST_ABORTED = "request_aborted"
    REQUEST_DONE = "request_done"


@dataclass(frozen=True)
class Notification:
    """One monitoring event."""

    event: DurocEvent
    time: float
    subjob: Optional[int] = None      # slot index, None for request-level
    detail: Any = None


#: Handler signature: receives the notification; return value ignored.
Handler = Callable[[Notification], None]


class CallbackDispatcher:
    """Registry + synchronous fan-out of notifications."""

    def __init__(self, log_max: int = LOG_MAX) -> None:
        self._handlers: dict[Optional[DurocEvent], list[Handler]] = {}
        #: Recent history (most recent ``log_max`` notifications),
        #: useful for tests and monitoring dashboards.
        self.log: deque[Notification] = deque(maxlen=log_max)

    def on(self, event: Optional[DurocEvent], handler: Handler) -> None:
        """Register for one event kind (None = all events)."""
        self._handlers.setdefault(event, []).append(handler)

    def off(self, event: Optional[DurocEvent], handler: Handler) -> None:
        """Remove one registration made with :meth:`on`.

        A handler registered N times must be removed N times; removing
        a handler that is not registered is a silent no-op, so teardown
        paths can call it unconditionally.
        """
        handlers = self._handlers.get(event)
        if handlers is None:
            return
        try:
            handlers.remove(handler)
        except ValueError:
            return
        if not handlers:
            del self._handlers[event]

    def emit(self, notification: Notification) -> None:
        self.log.append(notification)
        for key in (notification.event, None):
            # Snapshot: a handler may register further handlers.
            for handler in list(self._handlers.get(key, ())):
                handler(notification)

    def events(self, event: DurocEvent) -> list[Notification]:
        return [n for n in self.log if n.event is event]
