"""Application-side DUROC library (§4.1).

"A process that is to run on a co-allocated node starts as normal.  The
first thing it does is perform any non-side-effect-producing
initialization necessary to determine if the component execution can
proceed.  It then calls the co-allocation barrier, signalling whether
or not it has completed startup successfully.  Depending on how
co-allocation proceeds, the process may or may not return from the
barrier."

:func:`barrier` is that call; :func:`make_program` builds complete
program callables (startup → barrier → payload) for use as GRAM
executables, which is how every example and benchmark launches work.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.core.barrier import ABORT, CHECKIN, RELEASE, config_from_release
from repro.core.config import DurocConfig
from repro.errors import CoAllocationError, StopProcess
from repro.machine.host import ProcessContext
from repro.net.transport import Port
from repro.simcore.probe import emit
from repro.simcore.tracing import OBS_CONTEXT_PARAM, TraceContext

#: Context parameter keys injected by the DUROC co-allocator at submit.
PARAM_CONTACT = "duroc.contact"
PARAM_SLOT = "duroc.slot"

#: Check-in retransmission: the barrier messages ride the same lossy
#: datagram network as everything else, so a process re-sends its
#: check-in until the co-allocator's verdict (RELEASE/ABORT) arrives.
#: The co-allocator records check-ins idempotently and answers
#: retransmissions from released slots with the configuration again.
CHECKIN_RESEND_INTERVAL = 2.0

#: Resend cap: past this the process gives up on the co-allocator.
CHECKIN_MAX_RESENDS = 60


def barrier(
    ctx: ProcessContext,
    port: Port,
    ok: bool = True,
    reason: Optional[str] = None,
    trace: Optional[TraceContext] = None,
) -> Generator:
    """Check in to the co-allocation barrier and wait for the verdict.

    Returns the :class:`~repro.core.config.DurocConfig` on release.
    Raises :class:`~repro.errors.StopProcess` if the co-allocation is
    aborted (the process "may not return from the barrier"), and also
    when ``ok=False`` was reported (a process that failed startup never
    proceeds).  ``trace`` rides on the check-in message so the
    co-allocator can tie its barrier accounting into the trace tree.
    """
    if PARAM_CONTACT not in ctx.params:
        raise CoAllocationError(
            "process was not started under DUROC (missing duroc.contact)"
        )
    contact = ctx.params[PARAM_CONTACT]
    slot_id = ctx.params[PARAM_SLOT]
    payload = {
        "slot_id": slot_id,
        "rank": ctx.rank,
        "ok": ok,
        "reason": reason,
        "endpoint": port.endpoint,
    }
    node = str(port.endpoint)
    emit(ctx.env, node, "barrier.enter", slot=slot_id, rank=ctx.rank, ok=ok)
    port.send(contact, CHECKIN, payload=payload, ctx=trace)
    resends = 0
    while True:
        get = port.recv(filter=lambda m: m.kind in (RELEASE, ABORT))
        timer = ctx.env.timeout(CHECKIN_RESEND_INTERVAL)
        yield get | timer
        if get.triggered:
            timer.cancelled = True
            message = get.value
            break
        get.cancel()
        resends += 1
        if resends > CHECKIN_MAX_RESENDS:
            emit(ctx.env, node, "barrier.abandoned", slot=slot_id, rank=ctx.rank)
            raise StopProcess(("failed", "no barrier verdict arrived"))
        port.send(contact, CHECKIN, payload=payload, ctx=trace)
    if message.kind == ABORT:
        emit(
            ctx.env, node, "barrier.exit",
            slot=slot_id, rank=ctx.rank, verdict="abort",
        )
        raise StopProcess(("aborted", message.payload.get("reason")))
    if not ok:  # pragma: no cover - the co-allocator never releases failures
        raise StopProcess(("failed", reason))
    emit(
        ctx.env, node, "barrier.exit",
        slot=slot_id, rank=ctx.rank, verdict="release",
    )
    return config_from_release(message.payload)


#: Payload body: called after release with (ctx, port, config).
Body = Callable[[ProcessContext, Port, DurocConfig], Generator]


def make_program(
    startup: float = 0.0,
    body: Optional[Body] = None,
    startup_ok: Optional[Callable[[ProcessContext], tuple[bool, Optional[str]]]] = None,
    runtime: float = 0.0,
) -> Callable[[ProcessContext], Generator]:
    """Build a DUROC-aware program callable.

    ``startup`` seconds of initialization are scaled by the machine's
    load factor (an overloaded machine is late to the barrier — the
    paper's motivating failure).  ``startup_ok(ctx)`` may veto startup
    (application-defined failure: library checks, disk space, ...).
    After release, ``body`` runs; absent a body the process sleeps
    ``runtime`` seconds.
    """

    def program(ctx: ProcessContext) -> Generator:
        port = ctx.port("duroc")
        span = ctx.tracer.span(
            "app.startup",
            parent=ctx.params.get(OBS_CONTEXT_PARAM),
            rank=ctx.rank,
            executable=ctx.executable,
            site=ctx.machine.name,
        )
        if startup > 0:
            yield ctx.env.timeout(ctx.machine.startup_delay(startup))
        ok, reason = (True, None) if startup_ok is None else startup_ok(ctx)
        span.finish(ok=ok)
        if PARAM_CONTACT in ctx.params:
            config = yield from barrier(
                ctx, port, ok=ok, reason=reason, trace=span.context
            )
        else:
            # Started by plain GRAM (no co-allocator): run standalone.
            config = None
            if not ok:
                raise StopProcess(("failed", reason))
        if body is not None:
            result = yield from body(ctx, port, config)
            return result
        if runtime > 0:
            yield ctx.env.timeout(runtime)
        return config.global_rank() if config is not None else ctx.rank

    return program
