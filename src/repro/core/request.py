"""Co-allocation requests: subjob specifications and the editable set.

§3.2 of the paper classifies every element of the resource set as
``required``, ``interactive``, or ``optional``, and allows the request
to be "constructed incrementally" and — in the interactive strategy —
"modified via editing operations add, delete, and substitute until the
commit operation".  :class:`CoAllocationRequest` is the pre-submission
representation; the live, editable subjob table belongs to the
co-allocator (:mod:`repro.core.coallocator`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Iterator, Optional

from repro.errors import RSLValidationError
from repro.rsl.ast import Conjunction, MultiRequest, Relation, Specification, ValueSequence
from repro.rsl.attributes import (
    ARGUMENTS,
    COUNT,
    ENVIRONMENT,
    EXECUTABLE,
    MAX_TIME,
    MIN_MEMORY,
    RESERVATION_ID,
    RESOURCE_MANAGER_CONTACT,
    SUBJOB_LABEL,
    SUBJOB_START_TYPE,
    SUBJOB_TIMEOUT,
    validate_subjob_spec,
)
from repro.rsl.parser import parse_multirequest


class SubjobType(str, Enum):
    """Failure semantics of one subjob (paper §3.2).

    * ``REQUIRED`` — failure/timeout aborts the whole computation,
      before or after commit.
    * ``INTERACTIVE`` — failure/timeout triggers an application
      callback, which may delete or substitute the subjob.
    * ``OPTIONAL`` — does not participate in commitment; failures are
      ignored and late processes join as they become active.
    """

    REQUIRED = "required"
    INTERACTIVE = "interactive"
    OPTIONAL = "optional"


@dataclass(frozen=True)
class SubjobSpec:
    """One subjob: where, how many, what to run, and how failure is felt."""

    contact: str
    count: int
    executable: str
    start_type: SubjobType = SubjobType.REQUIRED
    arguments: tuple[Any, ...] = ()
    environment: dict[str, Any] = field(default_factory=dict)
    #: Seconds after submission before a missing check-in counts as
    #: failure (None = the co-allocator's default).
    timeout: Optional[float] = None
    label: Optional[str] = None
    max_time: Optional[float] = None
    #: MB of memory per process (§2.1 processors+memory co-allocation).
    min_memory: Optional[float] = None
    #: Extension (§5): advance reservation to bind the subjob to.
    reservation_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise RSLValidationError(f"count must be positive, got {self.count!r}")
        if self.timeout is not None and self.timeout <= 0:
            raise RSLValidationError(
                f"timeout must be positive, got {self.timeout!r}"
            )
        if self.min_memory is not None and self.min_memory <= 0:
            raise RSLValidationError(
                f"min_memory must be positive, got {self.min_memory!r}"
            )
        if not isinstance(self.start_type, SubjobType):
            object.__setattr__(self, "start_type", SubjobType(self.start_type))

    # -- RSL interop --------------------------------------------------------

    def to_rsl(self) -> Conjunction:
        """Render as the conjunction DUROC would send to GRAM."""
        children: list[Specification] = [
            Relation(RESOURCE_MANAGER_CONTACT, (self.contact,)),
            Relation(COUNT, (self.count,)),
            Relation(EXECUTABLE, (self.executable,)),
            Relation(SUBJOB_START_TYPE, (self.start_type.value,)),
        ]
        if self.arguments:
            children.append(Relation(ARGUMENTS, tuple(self.arguments)))
        if self.environment:
            children.append(
                Relation(
                    ENVIRONMENT,
                    tuple(
                        ValueSequence((key, value))
                        for key, value in sorted(self.environment.items())
                    ),
                )
            )
        if self.timeout is not None:
            children.append(Relation(SUBJOB_TIMEOUT, (self.timeout,)))
        if self.label is not None:
            children.append(Relation(SUBJOB_LABEL, (self.label,)))
        if self.max_time is not None:
            children.append(Relation(MAX_TIME, (self.max_time,)))
        if self.min_memory is not None:
            children.append(Relation(MIN_MEMORY, (self.min_memory,)))
        if self.reservation_id is not None:
            children.append(Relation(RESERVATION_ID, (self.reservation_id,)))
        return Conjunction(tuple(children))

    @classmethod
    def from_rsl(cls, spec: Specification) -> "SubjobSpec":
        """Build from a validated RSL conjunction."""
        conj = validate_subjob_spec(spec)
        relations = conj.relations()
        arguments: tuple[Any, ...] = ()
        if ARGUMENTS.lower() in relations:
            arguments = relations[ARGUMENTS.lower()].values
        environment: dict[str, Any] = {}
        if ENVIRONMENT.lower() in relations:
            for item in relations[ENVIRONMENT.lower()].values:
                if isinstance(item, ValueSequence) and len(item) == 2:
                    key, value = item.values
                    environment[str(key)] = value
        start = conj.get(SUBJOB_START_TYPE, SubjobType.REQUIRED.value)
        timeout = conj.get(SUBJOB_TIMEOUT)
        label = conj.get(SUBJOB_LABEL)
        max_time = conj.get(MAX_TIME)
        min_memory = conj.get(MIN_MEMORY)
        reservation_id = conj.get(RESERVATION_ID)
        return cls(
            contact=str(conj.get(RESOURCE_MANAGER_CONTACT)),
            count=int(conj.get(COUNT)),
            executable=str(conj.get(EXECUTABLE)),
            start_type=SubjobType(str(start)),
            arguments=tuple(arguments),
            environment=environment,
            timeout=float(timeout) if timeout is not None else None,
            label=str(label) if label is not None else None,
            max_time=float(max_time) if max_time is not None else None,
            min_memory=float(min_memory) if min_memory is not None else None,
            reservation_id=(
                str(reservation_id) if reservation_id is not None else None
            ),
        )

    def retarget(self, contact: str) -> "SubjobSpec":
        """The same subjob aimed at a different resource manager."""
        return replace(self, contact=contact)


class CoAllocationRequest:
    """An ordered, incrementally constructed set of subjob specs."""

    def __init__(self, subjobs: Optional[list[SubjobSpec]] = None) -> None:
        self.subjobs: list[SubjobSpec] = list(subjobs or [])

    # -- incremental construction (pre-submission) ---------------------------

    def add(self, spec: SubjobSpec) -> int:
        """Append a subjob; returns its index."""
        self.subjobs.append(spec)
        return len(self.subjobs) - 1

    def delete(self, index: int) -> SubjobSpec:
        self._check(index)
        return self.subjobs.pop(index)

    def substitute(self, index: int, spec: SubjobSpec) -> SubjobSpec:
        self._check(index)
        old, self.subjobs[index] = self.subjobs[index], spec
        return old

    def _check(self, index: int) -> None:
        if not 0 <= index < len(self.subjobs):
            raise RSLValidationError(
                f"subjob index {index} out of range 0..{len(self.subjobs) - 1}"
            )

    # -- views ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.subjobs)

    def __iter__(self) -> Iterator[SubjobSpec]:
        return iter(self.subjobs)

    def __getitem__(self, index: int) -> SubjobSpec:
        return self.subjobs[index]

    def total_processes(self) -> int:
        return sum(spec.count for spec in self.subjobs)

    def by_type(self, start_type: SubjobType) -> list[int]:
        return [
            idx
            for idx, spec in enumerate(self.subjobs)
            if spec.start_type is start_type
        ]

    # -- RSL interop ------------------------------------------------------------

    def to_rsl(self) -> MultiRequest:
        return MultiRequest(tuple(spec.to_rsl() for spec in self.subjobs))

    @classmethod
    def from_rsl(cls, rsl: "str | MultiRequest") -> "CoAllocationRequest":
        multi = parse_multirequest(rsl) if isinstance(rsl, str) else rsl
        return cls([SubjobSpec.from_rsl(branch) for branch in multi.children])

    def __repr__(self) -> str:
        kinds = ",".join(s.start_type.value[0] for s in self.subjobs)
        return (
            f"<CoAllocationRequest {len(self.subjobs)} subjobs "
            f"[{kinds}] {self.total_processes()} procs>"
        )
