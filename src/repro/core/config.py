"""Configuration mechanisms (§3.3).

After a successful co-allocation, "the further configuration or
initialization of these processes frequently requires that these
processes discover and communicate with one another".  The paper's
basic operations are:

* determine the number of subjobs in a resource set;
* determine the size of a specific subjob;
* communicate between at least one node in a subjob and every other
  node in the subjob;
* for at least one node in a subjob, communicate with at least one
  node in every other subjob.

:class:`DurocConfig` is delivered to every process in the barrier
release message and provides these operations (and a full address map,
which subsumes the two communication requirements).  The MPICH-G-like
layer (:mod:`repro.mpi`) is built purely on this interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.net.address import Endpoint


@dataclass(frozen=True)
class DurocConfig:
    """Per-process view of the released configuration."""

    #: Sizes of the released subjobs, in join order.
    sizes: tuple[int, ...]
    #: This process's subjob position (0-based, join order).
    my_subjob: int
    #: This process's rank within its subjob.
    my_rank: int
    #: (subjob, rank) -> communication endpoint, for every process.
    addresses: dict[tuple[int, int], Endpoint]

    # -- the four §3.3 mechanisms ------------------------------------------

    @property
    def n_subjobs(self) -> int:
        """Number of subjobs in the resource set."""
        return len(self.sizes)

    def subjob_size(self, subjob: int) -> int:
        """Number of processes in subjob ``subjob``."""
        self._check_subjob(subjob)
        return self.sizes[subjob]

    def intra_subjob_peers(self) -> list[Endpoint]:
        """Endpoints of every process in *this* subjob (including self)."""
        return [
            self.address(self.my_subjob, rank)
            for rank in range(self.sizes[self.my_subjob])
        ]

    def inter_subjob_leads(self) -> list[Endpoint]:
        """Endpoint of node 0 of every *other* subjob."""
        return [
            self.address(subjob, 0)
            for subjob in range(self.n_subjobs)
            if subjob != self.my_subjob
        ]

    # -- derived naming -----------------------------------------------------

    @property
    def total_processes(self) -> int:
        return sum(self.sizes)

    def global_rank(
        self, subjob: Optional[int] = None, rank: Optional[int] = None
    ) -> int:
        """Linear rank over (subjob-major, rank-minor) ordering.

        With no arguments, this process's own global rank — the value an
        MPI process would use as its ``COMM_WORLD`` rank.
        """
        subjob = self.my_subjob if subjob is None else subjob
        rank = self.my_rank if rank is None else rank
        self._check_subjob(subjob)
        if not 0 <= rank < self.sizes[subjob]:
            raise ConfigurationError(
                f"rank {rank} out of range for subjob {subjob} "
                f"(size {self.sizes[subjob]})"
            )
        return sum(self.sizes[:subjob]) + rank

    def locate(self, global_rank: int) -> tuple[int, int]:
        """Inverse of :meth:`global_rank`."""
        if not 0 <= global_rank < self.total_processes:
            raise ConfigurationError(
                f"global rank {global_rank} out of range 0..{self.total_processes - 1}"
            )
        remaining = global_rank
        for subjob, size in enumerate(self.sizes):
            if remaining < size:
                return subjob, remaining
            remaining -= size
        raise AssertionError("unreachable")  # pragma: no cover

    def address(self, subjob: int, rank: int) -> Endpoint:
        """Endpoint of process (subjob, rank)."""
        try:
            return self.addresses[(subjob, rank)]
        except KeyError:
            raise ConfigurationError(
                f"no address for process (subjob={subjob}, rank={rank})"
            ) from None

    def address_of_global(self, global_rank: int) -> Endpoint:
        return self.address(*self.locate(global_rank))

    def _check_subjob(self, subjob: int) -> None:
        if not 0 <= subjob < self.n_subjobs:
            raise ConfigurationError(
                f"subjob {subjob} out of range 0..{self.n_subjobs - 1}"
            )

    # -- wire format -----------------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        return {
            "sizes": self.sizes,
            "my_subjob": self.my_subjob,
            "my_rank": self.my_rank,
            "addresses": dict(self.addresses),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "DurocConfig":
        return cls(
            sizes=tuple(payload["sizes"]),
            my_subjob=int(payload["my_subjob"]),
            my_rank=int(payload["my_rank"]),
            addresses=dict(payload["addresses"]),
        )
