"""The distributed two-phase-commit barrier (§3.2).

Phase one: every spawned process performs its local startup checks and
*checks in*, reporting success or failure, then blocks.  Phase two: the
co-allocator decides; on commit, waiting processes are *released* with
the final configuration; on abort, they are told to terminate.

The :class:`BarrierManager` is the co-allocator-side bookkeeping:
per-slot check-in tables, release/abort message fan-out, and
configuration assembly.  Check-ins are keyed by *slot id* (unique per
submission attempt), so messages from a substituted-away subjob's
processes can never corrupt its replacement's barrier accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.bounded import BoundedDict
from repro.core.config import DurocConfig
from repro.errors import HostDown
from repro.net.address import Endpoint
from repro.net.transport import Port
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.simcore.probe import record_access

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.environment import Environment

#: Message kinds of the barrier protocol.
CHECKIN = "duroc.checkin"
RELEASE = "duroc.release"
ABORT = "duroc.abort"

#: Bound on stored release payloads.  A base is only re-read while some
#: process of its slot may still retransmit a check-in (its RELEASE was
#: lost) — a window far smaller than this; an evicted slot's straggler
#: falls back to the GRAM-level cancel path.
RELEASE_BASE_MAX = 1024


@dataclass(frozen=True)
class Checkin:
    """One process's arrival at the barrier."""

    slot_id: int
    rank: int
    ok: bool
    reason: Optional[str]
    endpoint: Endpoint
    time: float


class BarrierTable:
    """Check-in accounting for one slot (one subjob attempt)."""

    def __init__(self, slot_id: int, count: int) -> None:
        self.slot_id = slot_id
        self.count = count
        self.checkins: dict[int, Checkin] = {}

    def record(self, checkin: Checkin) -> bool:
        """Store a check-in; returns True the first time a rank arrives."""
        if checkin.rank in self.checkins:
            return False
        # Bounded by construction: at most ``count`` ranks check in
        # (the spawner created exactly count processes) and the table
        # itself is dropped on retire.
        self.checkins[checkin.rank] = checkin  # repro: noqa mem-grow-only-attr
        return True

    @property
    def arrived(self) -> int:
        return len(self.checkins)

    @property
    def complete(self) -> bool:
        """All processes arrived (successfully or not)."""
        return self.arrived >= self.count

    @property
    def all_ok(self) -> bool:
        return self.complete and all(c.ok for c in self.checkins.values())

    def failures(self) -> list[Checkin]:
        return [c for c in self.checkins.values() if not c.ok]


class BarrierManager:
    """Release/abort fan-out and configuration assembly."""

    def __init__(
        self,
        env: "Environment",
        port: Port,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.env = env
        self.port = port
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tables: dict[int, BarrierTable] = {}
        #: (slot_id, rank) -> release time, for barrier-wait statistics
        #: (§4.2).  Bounded by the request's own process count: one
        #: manager exists per DurocJob, and barrier_waits() reads every
        #: entry, so releases are retained for the job's lifetime.
        self.release_times: dict[tuple[int, int], float] = {}
        #: slot_id -> released base payload, kept so retransmitted
        #: check-ins (the process's RELEASE was lost) can be answered;
        #: LRU-bounded and dropped when the slot's table is discarded.
        self._release_base: BoundedDict[int, dict] = BoundedDict(
            RELEASE_BASE_MAX
        )

    def open_table(self, slot_id: int, count: int) -> BarrierTable:
        table = BarrierTable(slot_id, count)
        self.tables[slot_id] = table
        return table

    def discard_table(self, slot_id: int) -> None:
        if slot_id in self.tables:
            record_access(
                self.env, str(self.port.endpoint),
                f"barrier:{slot_id}", "w", op="discard",
            )
        self.tables.pop(slot_id, None)
        # Only pre-release slots are ever discarded (delete() requires
        # an editable request state), so no resend can miss this base.
        self._release_base.pop(slot_id, None)

    def record(self, checkin: Checkin) -> Optional[BarrierTable]:
        """Record a check-in; returns the table, or None if unknown slot."""
        table = self.tables.get(checkin.slot_id)
        if table is None:
            return None
        applied = table.record(checkin)
        record_access(
            self.env, str(self.port.endpoint),
            f"barrier:{checkin.slot_id}", "w",
            op="record", rank=checkin.rank, applied=applied,
        )
        if applied:
            self.metrics.gauge("duroc.barrier_waiting").inc()
        return table

    # -- fan-out ------------------------------------------------------------

    def build_config(self, slot_ids: list[int]) -> dict[int, dict]:
        """Assemble per-slot base configuration for released slots.

        Returns {slot_id: base payload}; per-process fields are filled
        at send time.
        """
        sizes = tuple(self.tables[sid].count for sid in slot_ids)
        addresses: dict[tuple[int, int], Endpoint] = {}
        for position, sid in enumerate(slot_ids):
            for rank, checkin in self.tables[sid].checkins.items():
                addresses[(position, rank)] = checkin.endpoint
        return {
            sid: {
                "sizes": sizes,
                "my_subjob": position,
                "addresses": addresses,
            }
            for position, sid in enumerate(slot_ids)
        }

    def release_slot(self, slot_id: int, base: dict) -> int:
        """Send the release message to every process of one slot."""
        table = self.tables[slot_id]
        self._release_base[slot_id] = base
        record_access(
            self.env, str(self.port.endpoint),
            f"barrier:{slot_id}", "w", op="release",
        )
        released = 0
        for rank, checkin in sorted(table.checkins.items()):
            if not checkin.ok:
                continue
            payload = dict(base, my_rank=rank)
            self._send(checkin.endpoint, RELEASE, payload)
            # Audited: one entry per released process of this job; the
            # §4.2 statistics read every entry for the manager's
            # lifetime.
            self.release_times[  # repro: noqa mem-grow-only-attr
                (slot_id, rank)
            ] = self.env.now
            self.metrics.gauge("duroc.barrier_waiting").dec()
            self.metrics.histogram("duroc.barrier_wait_seconds").observe(
                self.env.now - checkin.time
            )
            released += 1
        return released

    def resend_release(self, checkin: Checkin) -> bool:
        """Answer a retransmitted check-in from an already-released slot.

        The original RELEASE was lost in flight; send the stored
        configuration again (idempotent at the receiver: the process is
        still blocked at the barrier).
        """
        base = self._release_base.get(checkin.slot_id)
        if base is None:
            return False
        record_access(
            self.env, str(self.port.endpoint),
            f"barrier:{checkin.slot_id}", "r",
            op="resend_release", rank=checkin.rank,
        )
        self._send(checkin.endpoint, RELEASE, dict(base, my_rank=checkin.rank))
        return True

    def abort_slot(self, slot_id: int, reason: str) -> int:
        """Tell every checked-in process of one slot to terminate."""
        table = self.tables.get(slot_id)
        if table is None:
            return 0
        record_access(
            self.env, str(self.port.endpoint),
            f"barrier:{slot_id}", "w", op="abort",
        )
        aborted = 0
        for checkin in table.checkins.values():
            if (table.slot_id, checkin.rank) in self.release_times:
                continue  # already released; kill goes via GRAM cancel
            self._send(checkin.endpoint, ABORT, {"reason": reason})
            self.metrics.gauge("duroc.barrier_waiting").dec()
            aborted += 1
        return aborted

    def _send(self, dst: Endpoint, kind: str, payload: dict) -> None:
        try:
            self.port.send(dst, kind, payload)
        except HostDown:  # pragma: no cover - client host death
            pass

    # -- statistics -----------------------------------------------------------

    def barrier_waits(self) -> list[tuple[int, int, float]]:
        """(slot_id, rank, wait) for every released process.

        This is the quantity the paper's §4.2 analytical model predicts:
        average wait ≈ k·M/2, waits occurring in per-subjob blocks, the
        shortest wait ≈ 0.
        """
        waits = []
        for (slot_id, rank), released_at in self.release_times.items():
            checkin = self.tables[slot_id].checkins[rank]
            waits.append((slot_id, rank, released_at - checkin.time))
        return sorted(waits)


def config_from_release(payload: dict) -> DurocConfig:
    """Parse a release message payload into a DurocConfig."""
    return DurocConfig(
        sizes=tuple(payload["sizes"]),
        my_subjob=int(payload["my_subjob"]),
        my_rank=int(payload["my_rank"]),
        addresses=dict(payload["addresses"]),
    )
