"""Deterministic bounded collections for long-lived services.

The ``mem-*`` lints (:mod:`repro.analysis.memory_rules`) flag
per-request state that only ever grows over a service's lifetime —
dedup caches, intern tables, trace/context maps.  This module is the
sanctioned remedy: drop-in mappings and sets whose size is bounded *by
construction*, with eviction that is a pure function of the operation
sequence (never of hash order, process layout, or wall clock), so a
bounded run's behaviour is byte-identical across machines and
interpreter invocations.

* :class:`BoundedDict` — LRU mapping with an optional simulated-clock
  TTL.  Recency is tracked through dict insertion order (guaranteed,
  deterministic); the eviction victim is always the least-recently-used
  live entry.  Expiry compares stamps from the injected ``clock``
  callable — pass ``lambda: env.now`` so entries age in *simulated*
  time and a replayed run expires exactly the same keys.
* :class:`BoundedSet` — the same policy over membership only.
* :class:`RetainedCensus` — a heap census over registered collections,
  reporting new retained-object peaks through the
  :class:`~repro.simcore.probe.Probe` seam (``on_retained``) so the
  ``memory_stress`` bench and the CI gate can pin the high-water mark.

Both collections keep high-water and hit/miss/eviction statistics so a
bound that is routinely exceeded (evicting hot entries) is visible in
profiles rather than silently degrading.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    MutableMapping,
    MutableSet,
    Optional,
    Sized,
    TypeVar,
)

K = TypeVar("K")
V = TypeVar("V")

#: Eviction callback signature: ``on_evict(key, value, cause)`` with
#: ``cause`` one of ``"lru"`` / ``"ttl"``.
EvictHook = Callable[[Any, Any, str], None]


class BoundedDict(MutableMapping[K, V]):
    """A mapping bounded to ``maxsize`` live entries, LRU-evicted.

    Reads and writes refresh recency; inserting past the bound evicts
    the least-recently-used entry.  With ``ttl`` set (requires
    ``clock``), entries older than ``ttl`` per the injected clock are
    lazily expired on access.  Determinism contract: iteration order is
    recency order (stalest first), the eviction victim depends only on
    the sequence of operations and clock readings, and no method
    consults the process's hash seed or wall clock.
    """

    __slots__ = (
        "maxsize", "ttl", "_clock", "_on_evict", "_data", "_stamps",
        "hits", "misses", "inserts", "evictions_lru", "evictions_ttl",
        "high_water",
    )

    def __init__(
        self,
        maxsize: int,
        *,
        ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        on_evict: Optional[EvictHook] = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize!r}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl!r}")
        if ttl is not None and clock is None:
            raise ValueError(
                "ttl requires an injected clock (pass clock=lambda: env.now "
                "so expiry runs on simulated time, never the wall clock)"
            )
        self.maxsize = int(maxsize)
        self.ttl = ttl
        self._clock = clock
        self._on_evict = on_evict
        self._data: Dict[K, V] = {}
        #: key -> last-refresh clock reading (TTL mode only).
        self._stamps: Dict[K, float] = {}
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions_lru = 0
        self.evictions_ttl = 0
        self.high_water = 0

    # -- expiry ------------------------------------------------------------

    def _expire(self) -> None:
        """Drop every entry older than ``ttl`` (no-op without one)."""
        if self.ttl is None or not self._data:
            return
        now = self._clock()  # type: ignore[misc]
        horizon = now - self.ttl
        # Stamps share _data's recency order, so expired entries form a
        # prefix... except that a refresh updates the stamp without
        # proof the older entries expired too; scan explicitly.
        dead = [key for key, stamp in self._stamps.items() if stamp <= horizon]
        for key in dead:
            value = self._data.pop(key)
            self._stamps.pop(key, None)
            self.evictions_ttl += 1
            if self._on_evict is not None:
                self._on_evict(key, value, "ttl")

    def _touch(self, key: K) -> None:
        """Refresh recency (and the TTL stamp) of a live key."""
        self._data[key] = self._data.pop(key)
        if self.ttl is not None:
            self._stamps[key] = self._stamps.pop(key)
            self._stamps[key] = self._clock()  # type: ignore[misc]

    # -- mapping protocol --------------------------------------------------

    def __getitem__(self, key: K) -> V:
        self._expire()
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            raise
        self.hits += 1
        self._touch(key)
        return value

    def __setitem__(self, key: K, value: V) -> None:
        self._expire()
        if key in self._data:
            del self._data[key]
        else:
            self.inserts += 1
        self._data[key] = value
        if self.ttl is not None:
            self._stamps.pop(key, None)
            self._stamps[key] = self._clock()  # type: ignore[misc]
        if len(self._data) > self.maxsize:
            victim = next(iter(self._data))
            evicted = self._data.pop(victim)
            self._stamps.pop(victim, None)
            self.evictions_lru += 1
            if self._on_evict is not None:
                self._on_evict(victim, evicted, "lru")
        if len(self._data) > self.high_water:
            self.high_water = len(self._data)

    def __delitem__(self, key: K) -> None:
        del self._data[key]
        self._stamps.pop(key, None)

    def __iter__(self) -> Iterator[K]:
        self._expire()
        return iter(list(self._data))

    def __len__(self) -> int:
        self._expire()
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        """Membership probe: lazily expires but never counts or touches."""
        self._expire()
        return key in self._data

    def peek(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Read without refreshing recency or counting a hit/miss."""
        self._expire()
        return self._data.get(key, default)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot, suitable for profiles and assertions."""
        return {
            "size": len(self._data),
            "high_water": self.high_water,
            "hits": self.hits,
            "misses": self.misses,
            "inserts": self.inserts,
            "evictions_lru": self.evictions_lru,
            "evictions_ttl": self.evictions_ttl,
        }

    def __repr__(self) -> str:
        return (
            f"<BoundedDict size={len(self._data)}/{self.maxsize} "
            f"hw={self.high_water} evicted={self.evictions_lru}"
            f"+{self.evictions_ttl}ttl>"
        )


class BoundedSet(MutableSet[K]):
    """A set bounded to ``maxsize`` members, LRU-evicted like the dict.

    ``add`` of an existing member refreshes its recency; membership
    tests (``in``) are pure probes and do not.  Shares
    :class:`BoundedDict`'s determinism contract and statistics.
    """

    __slots__ = ("_dict",)

    def __init__(
        self,
        maxsize: int,
        *,
        ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        on_evict: Optional[EvictHook] = None,
    ) -> None:
        self._dict: BoundedDict[K, None] = BoundedDict(
            maxsize, ttl=ttl, clock=clock, on_evict=on_evict
        )

    def add(self, value: K) -> None:
        self._dict[value] = None

    def discard(self, value: K) -> None:
        self._dict.pop(value, None)

    def __contains__(self, value: object) -> bool:
        return value in self._dict

    def __iter__(self) -> Iterator[K]:
        return iter(self._dict)

    def __len__(self) -> int:
        return len(self._dict)

    @property
    def maxsize(self) -> int:
        return self._dict.maxsize

    @property
    def high_water(self) -> int:
        return self._dict.high_water

    def stats(self) -> Dict[str, int]:
        return self._dict.stats()

    def __repr__(self) -> str:
        return f"<BoundedSet size={len(self._dict)}/{self.maxsize}>"


class RetainedCensus:
    """Retained-object census over registered collections.

    Anything with ``__len__`` registers — bounded collections and the
    plain dicts they replace alike, so a benchmark can run the same
    workload under both and compare peaks.  :meth:`observe` totals the
    live entries and reports *new* peaks through the environment's
    probe (:meth:`~repro.simcore.probe.Probe.on_retained`), mirroring
    the telemetry layer's ``on_spans_retained`` self-metering.
    """

    def __init__(self, env: Optional[Any] = None) -> None:
        self.env = env
        self._collections: list[Sized] = []
        self.high_water = 0

    def register(self, collection: Sized) -> Sized:
        """Track ``collection``; returns it, so registration chains."""
        self._collections.append(collection)
        return collection

    def register_all(self, collections: Iterable[Sized]) -> None:
        for collection in collections:
            self.register(collection)

    def retained(self) -> int:
        """Total live entries across every registered collection."""
        return sum(len(collection) for collection in self._collections)

    def observe(self) -> int:
        """Take a census; report and record a new peak, if one."""
        total = self.retained()
        if total > self.high_water:
            self.high_water = total
            probe = getattr(self.env, "probe", None)
            if probe is not None:
                probe.on_retained(total)
        return total

    def __repr__(self) -> str:
        return (
            f"<RetainedCensus collections={len(self._collections)} "
            f"hw={self.high_water}>"
        )
