"""DUROC subjob and request state machines."""

from __future__ import annotations

from enum import Enum

from repro.errors import RequestStateError


class SubjobState(str, Enum):
    """Lifecycle of one subjob slot inside a co-allocation."""

    #: Created (by the initial request or an edit), not yet sent to GRAM.
    PENDING = "pending"
    #: GRAM submission in flight.
    SUBMITTING = "submitting"
    #: GRAM accepted; waiting for process barrier check-ins.
    SUBMITTED = "submitted"
    #: Every process checked into the barrier reporting success.
    CHECKED_IN = "checked_in"
    #: Barrier released; the subjob is part of the running computation.
    RELEASED = "released"
    #: GRAM refusal, startup failure, timeout, or crash.
    FAILED = "failed"
    #: Edited out of the request (delete/substitute), job canceled.
    DELETED = "deleted"
    #: Killed by abort or an explicit control operation.
    TERMINATED = "terminated"

    @property
    def terminal(self) -> bool:
        return self in (
            SubjobState.FAILED,
            SubjobState.DELETED,
            SubjobState.TERMINATED,
        )

    @property
    def live(self) -> bool:
        """Still part of the configuration being assembled."""
        return not self.terminal


SUBJOB_TRANSITIONS: dict[SubjobState, frozenset[SubjobState]] = {
    SubjobState.PENDING: frozenset(
        {SubjobState.SUBMITTING, SubjobState.DELETED, SubjobState.TERMINATED}
    ),
    SubjobState.SUBMITTING: frozenset(
        {
            SubjobState.SUBMITTED,
            SubjobState.FAILED,
            SubjobState.DELETED,
            SubjobState.TERMINATED,
        }
    ),
    SubjobState.SUBMITTED: frozenset(
        {
            SubjobState.CHECKED_IN,
            SubjobState.FAILED,
            SubjobState.DELETED,
            SubjobState.TERMINATED,
        }
    ),
    SubjobState.CHECKED_IN: frozenset(
        {
            SubjobState.RELEASED,
            SubjobState.FAILED,
            SubjobState.DELETED,
            SubjobState.TERMINATED,
        }
    ),
    SubjobState.RELEASED: frozenset(
        {SubjobState.FAILED, SubjobState.TERMINATED}
    ),
    SubjobState.FAILED: frozenset({SubjobState.DELETED}),
    SubjobState.DELETED: frozenset(),
    SubjobState.TERMINATED: frozenset(),
}


class RequestState(str, Enum):
    """Lifecycle of the whole co-allocation."""

    #: Subjobs being submitted / checked in; edits allowed.
    ALLOCATING = "allocating"
    #: Commit issued; waiting for the final configuration to check in.
    COMMITTING = "committing"
    #: Barrier released: the computation is running.
    RELEASED = "released"
    #: All released subjobs have finished.
    DONE = "done"
    #: A required subjob failed, or the application aborted.
    ABORTED = "aborted"
    #: Explicit kill.
    TERMINATED = "terminated"

    @property
    def terminal(self) -> bool:
        return self in (RequestState.DONE, RequestState.ABORTED, RequestState.TERMINATED)

    @property
    def editable(self) -> bool:
        """Edits (add/delete/substitute) are legal in this state.

        Per the paper, edits are allowed "until the commit operation";
        commit itself still reacts to failures via callbacks, but
        *application-initiated* edits of interactive subjobs remain
        legal during COMMITTING because failure callbacks fire then.
        """
        return self in (RequestState.ALLOCATING, RequestState.COMMITTING)


REQUEST_TRANSITIONS: dict[RequestState, frozenset[RequestState]] = {
    RequestState.ALLOCATING: frozenset(
        {RequestState.COMMITTING, RequestState.ABORTED, RequestState.TERMINATED}
    ),
    RequestState.COMMITTING: frozenset(
        {RequestState.RELEASED, RequestState.ABORTED, RequestState.TERMINATED}
    ),
    RequestState.RELEASED: frozenset(
        {RequestState.DONE, RequestState.ABORTED, RequestState.TERMINATED}
    ),
    RequestState.DONE: frozenset(),
    RequestState.ABORTED: frozenset(),
    RequestState.TERMINATED: frozenset(),
}


def check_subjob_transition(current: SubjobState, new: SubjobState) -> None:
    if new not in SUBJOB_TRANSITIONS[current]:
        raise RequestStateError(
            f"illegal subjob transition {current.value} -> {new.value}"
        )


def check_request_transition(current: RequestState, new: RequestState) -> None:
    if new not in REQUEST_TRANSITIONS[current]:
        raise RequestStateError(
            f"illegal request transition {current.value} -> {new.value}"
        )
