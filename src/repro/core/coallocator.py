"""DUROC — the interactive-transaction co-allocator (§3.2, §4.1).

The Dynamically-Updated Resource Online Co-allocator drives a
co-allocation request through the two-phase-commit protocol:

1. subjobs are submitted to their GRAM resource managers *sequentially*
   (the paper's Fig. 5 timeline; the source of the linear-in-subjobs
   cost of Fig. 4), while started processes check into the barrier
   concurrently;
2. until :meth:`DurocJob.commit` completes, the request may be edited —
   ``add``, ``delete``, ``substitute`` — and subjob failures are
   handled per their start type:

   * ``required``  — failure/timeout terminates the entire computation,
     before or after commit;
   * ``interactive`` — failure/timeout triggers the application's
     interactive handler, which may delete the subjob or substitute
     alternatives;
   * ``optional`` — failures are ignored; processes join as and when
     they become active, even after release;

3. on commit, once every non-optional live subjob has checked in, the
   barrier is released and every process receives the final
   configuration (:class:`~repro.core.config.DurocConfig`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

import numpy as np

from repro.core.barrier import CHECKIN, ABORT, BarrierManager, Checkin
from repro.core.callbacks import CallbackDispatcher, DurocEvent, Handler, Notification
from repro.core.request import CoAllocationRequest, SubjobSpec, SubjobType
from repro.core.states import (
    RequestState,
    SubjobState,
    check_request_transition,
    check_subjob_transition,
)
from repro.core.applib import PARAM_CONTACT, PARAM_SLOT
from repro.errors import (
    AllocationAborted,
    AuthenticationError,
    CircuitOpen,
    GramError,
    HostDown,
    RPCTimeout,
    RequestStateError,
    RetryExhausted,
)
from repro.gram.client import CallbackListener, GramClient, JobHandle
from repro.gram.states import JobState
from repro.gsi.auth import AuthConfig
from repro.gsi.credentials import Credential
from repro.net.network import Network
from repro.net.address import Endpoint
from repro.net.transport import Port, ephemeral_endpoint
from repro.resilience import BreakerBoard, Deadline, RetryPolicy
from repro.simcore.events import Event
from repro.simcore.probe import emit, register_locus
from repro.simcore.process import ProcessGenerator
from repro.simcore.resources import Store
from repro.simcore.tracing import NULL_TRACER, TraceContext, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.environment import Environment

_slot_ids = itertools.count(1)

#: Handler invoked on interactive subjob failure/timeout:
#: ``handler(job, slot, notification)``.
InteractiveHandler = Callable[["DurocJob", "SubjobSlot", Notification], None]


class SubjobSlot:
    """One live entry of the co-allocation's subjob table."""

    def __init__(self, index: int, spec: SubjobSpec, now: float) -> None:
        self.index = index
        self.spec = spec
        self.slot_id = next(_slot_ids)
        self.state = SubjobState.PENDING
        self.created_at = now
        self.submit_started_at: Optional[float] = None
        self.submitted_at: Optional[float] = None
        self.checked_in_at: Optional[float] = None
        self.released_at: Optional[float] = None
        self.failure_reason: Optional[str] = None
        self.gram_handle: Optional[JobHandle] = None
        self.gram_state: Optional[JobState] = None
        #: Context of this slot's ``duroc.submit`` span, once opened.
        self.trace_ctx: Optional[TraceContext] = None

    def transition(self, new: SubjobState, now: float) -> None:
        check_subjob_transition(self.state, new)
        self.state = new
        if new is SubjobState.SUBMITTING:
            self.submit_started_at = now
        elif new is SubjobState.SUBMITTED:
            self.submitted_at = now
        elif new is SubjobState.CHECKED_IN:
            self.checked_in_at = now
        elif new is SubjobState.RELEASED:
            self.released_at = now

    def __repr__(self) -> str:
        return (
            f"<SubjobSlot #{self.index} {self.spec.start_type.value} "
            f"{self.spec.contact} x{self.spec.count} {self.state.value}>"
        )


@dataclass
class DurocResult:
    """Outcome of a successful commit."""

    job: "DurocJob"
    sizes: tuple[int, ...]
    released_at: float
    elapsed: float

    @property
    def total_processes(self) -> int:
        return sum(self.sizes)

    def barrier_waits(self) -> list[tuple[int, int, float]]:
        return self.job.barrier.barrier_waits()


class DurocJob:
    """Handle for one co-allocation: edits, commit, monitoring, control."""

    def __init__(self, duroc: "Duroc", request: CoAllocationRequest) -> None:
        self.duroc = duroc
        self.env: "Environment" = duroc.env
        self.job_id = f"duroc{next(duroc._job_counter)}"
        # The barrier port must be unique per job even across Duroc
        # instances (job ids are only unique per instance), so it gets
        # an ephemeral endpoint rather than a job-id-derived name.
        self.port = Port(
            duroc.network, ephemeral_endpoint(duroc.host, f"duroc.{self.job_id}")
        )
        self.tracer = duroc.tracer
        self.metrics = self.tracer.metrics
        #: Root span of the request's trace tree: everything this
        #: co-allocation causes hangs off it.
        self.trace_span = self.tracer.span("duroc.request", job=self.job_id)
        self.trace_ctx = self.trace_span.context
        self._trace_finished = False
        self.barrier = BarrierManager(self.env, self.port, metrics=self.metrics)
        self.callbacks = CallbackDispatcher()
        self.interactive_handler: Optional[InteractiveHandler] = None
        self.state = RequestState.ALLOCATING
        self.abort_reason: Optional[str] = None
        #: Index of the subjob whose failure triggered the abort, if one.
        self.abort_subjob: Optional[int] = None
        self.started_at = self.env.now
        self.released_at: Optional[float] = None

        #: Slot indices are the paper's subjob labels and part of the
        #: monitoring API, so the list keeps one stable entry per slot
        #: ever added (substitute() appends; bounded by edit count, not
        #: by time — audited, see the append in add()).
        self.slots: list[SubjobSlot] = []
        #: Live-slot index; entries are dropped as slots retire.
        self._slot_by_id: dict[int, SubjobSlot] = {}
        self._submit_queue: Store = Store(self.env)
        self._waiters: list[Event] = []

        self._gram_listener = CallbackListener(duroc.network, duroc.host)
        #: Verification locus: the job's processes (listener, driver,
        #: watchdog, heartbeat, commit) share state legitimately and
        #: form one unit of control for happens-before purposes.
        self._verify_node = f"{self.job_id}@{duroc.host}"
        register_locus(self.env, self.port.endpoint, self._verify_node)
        register_locus(
            self.env, self._gram_listener.endpoint, self._verify_node
        )
        self._probe("duroc.state", state=self.state.value)
        self._listener = self.env.process(
            self._listen(), name=f"{self.job_id}:listen"
        )
        self._driver = self.env.process(
            self._drive(), name=f"{self.job_id}:drive"
        )
        if duroc.heartbeat_interval > 0:
            self.env.process(self._heartbeat(), name=f"{self.job_id}:hb")
        for spec in request:
            self.add(spec)

    # ------------------------------------------------------------------
    # Editing operations (paper: add, delete, substitute — until commit)
    # ------------------------------------------------------------------

    def add(self, spec: SubjobSpec) -> SubjobSlot:
        """Add a subjob to the request; returns its slot."""
        if not self.state.editable:
            raise RequestStateError(
                f"cannot edit request in state {self.state.value}"
            )
        slot = SubjobSlot(len(self.slots), spec, self.env.now)
        self.slots.append(slot)  # repro: noqa mem-grow-only-attr
        self._slot_by_id[slot.slot_id] = slot
        self.barrier.open_table(slot.slot_id, spec.count)
        self._submit_queue.put(slot)
        return slot

    def delete(self, slot: "SubjobSlot | int") -> None:
        """Remove a subjob: cancel its GRAM job, discard its check-ins."""
        slot = self._resolve(slot)
        if not self.state.editable:
            raise RequestStateError(
                f"cannot edit request in state {self.state.value}"
            )
        if slot.state.terminal:
            if slot.state is SubjobState.FAILED:
                slot.transition(SubjobState.DELETED, self.env.now)
            return
        self._retire(slot, SubjobState.DELETED, "deleted by application")
        self._emit(DurocEvent.SUBJOB_DELETED, slot, "deleted by application")
        self._kick()

    def substitute(self, slot: "SubjobSlot | int", spec: SubjobSpec) -> SubjobSlot:
        """Replace a subjob with ``spec``; returns the new slot."""
        slot = self._resolve(slot)
        self.delete(slot)
        return self.add(spec)

    def _resolve(self, slot: "SubjobSlot | int") -> SubjobSlot:
        if isinstance(slot, SubjobSlot):
            return slot
        try:
            return self.slots[slot]
        except IndexError:
            raise RequestStateError(f"no subjob slot {slot!r}") from None

    # ------------------------------------------------------------------
    # Monitoring (§3.4)
    # ------------------------------------------------------------------

    def on(self, event: Optional[DurocEvent], handler: Handler) -> None:
        """Register a monitoring callback (None = every event)."""
        self.callbacks.on(event, handler)

    def off(self, event: Optional[DurocEvent], handler: Handler) -> None:
        """Remove a callback registered with :meth:`on`."""
        self.callbacks.off(event, handler)

    def set_interactive_handler(self, handler: InteractiveHandler) -> None:
        """Install the application's interactive-failure policy."""
        self.interactive_handler = handler

    def live_slots(self) -> list[SubjobSlot]:
        return [s for s in self.slots if s.state.live]

    def checked_in_slots(self) -> list[SubjobSlot]:
        return [s for s in self.slots if s.state is SubjobState.CHECKED_IN]

    def released_slots(self) -> list[SubjobSlot]:
        return [s for s in self.slots if s.state is SubjobState.RELEASED]

    # ------------------------------------------------------------------
    # Agent-side blocking operations
    # ------------------------------------------------------------------

    def wait(
        self, predicate: Callable[["DurocJob"], Any]
    ) -> Generator[Event, Any, Any]:
        """Generator: block until ``predicate(self)`` or a terminal state.

        Returns the predicate's truthy value, or raises
        :class:`AllocationAborted` if the request terminated first.
        """
        while True:
            if self.state.terminal:
                raise AllocationAborted(
                    self.abort_reason or self.state.value,
                    subjob=self.abort_subjob,
                )
            value = predicate(self)
            if value:
                return value
            event = self.env.event()
            self._waiters.append(event)
            yield event

    def commit(self) -> Generator[Event, Any, DurocResult]:
        """Generator: the commit operation of the two-phase protocol.

        Blocks until every live non-optional subjob has checked in, then
        releases the barrier and returns a :class:`DurocResult`.  Raises
        :class:`AllocationAborted` if a required subjob fails (or the
        request was killed) before release.
        """
        if self.state.terminal:
            raise AllocationAborted(
                self.abort_reason or self.state.value, subjob=self.abort_subjob
            )
        if self.state is not RequestState.ALLOCATING:
            raise RequestStateError(f"cannot commit in state {self.state.value}")
        self._transition(RequestState.COMMITTING)
        self._emit(DurocEvent.REQUEST_COMMITTED, None, None)
        self.tracer.mark("duroc.commit", parent=self.trace_ctx, job=self.job_id)
        self._probe("duroc.commit")

        def settled(job: "DurocJob") -> bool:
            if job._blocking_slots():
                return False
            if job.checked_in_slots():
                return True
            # Nothing ready yet: if optional subjobs are still in
            # flight, wait for the first arrival rather than releasing
            # an empty configuration ("workers join the computation as
            # and when they become active").
            return not job._pending_optional_slots()

        yield from self.wait(settled)

        released = self._release()
        if not released:
            self._abort(
                "commit released an empty configuration", origin="empty-config"
            )
            raise AllocationAborted(self.abort_reason)
        return DurocResult(
            job=self,
            sizes=tuple(slot.spec.count for slot in released),
            released_at=self.env.now,
            elapsed=self.env.now - self.started_at,
        )

    def _blocking_slots(self) -> list[SubjobSlot]:
        """Slots the commit must still wait for."""
        return [
            slot
            for slot in self.slots
            if slot.state in (
                SubjobState.PENDING,
                SubjobState.SUBMITTING,
                SubjobState.SUBMITTED,
            )
            and slot.spec.start_type is not SubjobType.OPTIONAL
        ]

    def _pending_optional_slots(self) -> list[SubjobSlot]:
        """Optional slots that may still check in."""
        return [
            slot
            for slot in self.slots
            if slot.state in (
                SubjobState.PENDING,
                SubjobState.SUBMITTING,
                SubjobState.SUBMITTED,
            )
            and slot.spec.start_type is SubjobType.OPTIONAL
        ]

    def wait_done(self) -> Generator[Event, Any, None]:
        """Generator: block until every released subjob's job finished."""
        if self.state is not RequestState.RELEASED:
            raise RequestStateError(f"cannot wait_done in state {self.state.value}")

        def finished(job: "DurocJob") -> bool:
            return all(
                slot.gram_state is not None and slot.gram_state.terminal
                for slot in job.slots
                if slot.state in (SubjobState.RELEASED, SubjobState.FAILED)
                and slot.released_at is not None
            )

        try:
            yield from self.wait(finished)
        except AllocationAborted:
            raise
        if self.state is RequestState.RELEASED:
            self._transition(RequestState.DONE)
            self._emit(DurocEvent.REQUEST_DONE, None, None)

    # ------------------------------------------------------------------
    # Control (§3.4): kill the ensemble as a collective unit
    # ------------------------------------------------------------------

    def kill(
        self,
        reason: str = "killed by application",
        subjob: Optional[int] = None,
    ) -> None:
        """Terminate every subjob and the request (fire-and-forget).

        ``subjob`` optionally records which subjob's failure forced the
        kill, for agents that revise-and-resubmit.
        """
        if self.state.terminal:
            return
        self.abort_reason = reason
        self.abort_subjob = subjob
        self._probe(
            "duroc.abort.decision",
            origin="kill",
            subjob=subjob,
            blame_start_type=self._blame_start_type(subjob),
            reason=reason,
        )
        self._transition(RequestState.TERMINATED)
        self._teardown(reason)
        self._emit(DurocEvent.REQUEST_ABORTED, None, reason)
        self._finish_trace("killed")
        self._kick()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _transition(self, new: RequestState) -> None:
        check_request_transition(self.state, new)
        self.state = new
        self._probe("duroc.state", state=new.value)

    def _finish_trace(self, outcome: str) -> None:
        """Close the root span with the request's outcome (first wins)."""
        if self._trace_finished:
            return
        self._trace_finished = True
        self.trace_span.finish(outcome=outcome)
        self.metrics.counter("duroc.requests_total").inc(outcome=outcome)

    def _probe(self, name: str, **attrs: Any) -> None:
        """Emit a runtime-verification event on this job's locus."""
        emit(self.env, self._verify_node, name, job=self.job_id, **attrs)

    def _blame_start_type(self, subjob: Optional[int]) -> Optional[str]:
        """Start type of the subjob blamed for an abort, if one."""
        if subjob is None or not 0 <= subjob < len(self.slots):
            return None
        return self.slots[subjob].spec.start_type.value

    def _emit(
        self, event: DurocEvent, slot: Optional[SubjobSlot], detail: Any
    ) -> None:
        self.callbacks.emit(
            Notification(
                event=event,
                time=self.env.now,
                subjob=slot.index if slot is not None else None,
                detail=detail,
            )
        )

    def _kick(self) -> None:
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()

    # -- submission driver ---------------------------------------------------

    def _drive(self) -> ProcessGenerator:
        """Submit queued slots to GRAM.

        The paper's DUROC submits subjob requests strictly one at a
        time (Fig. 5) — the source of the linear-in-subjobs cost of
        Fig. 4.  With ``Duroc(sequential_submission=False)`` (an
        ablation, not the paper's behaviour) submissions overlap.
        """
        while True:
            get = self._submit_queue.get()
            yield get
            slot: SubjobSlot = get.value
            if slot.state is not SubjobState.PENDING:
                continue  # deleted while queued
            if self.state.terminal:
                return
            if self.duroc.sequential_submission:
                yield from self._submit_slot(slot)
            else:
                self.env.process(
                    self._submit_slot(slot),
                    name=f"{self.job_id}:submit{slot.index}",
                )

    def _submit_slot(self, slot: SubjobSlot) -> ProcessGenerator:
        """Run one slot's GRAM submission to completion."""
        env = self.env
        slot.transition(SubjobState.SUBMITTING, env.now)
        env.process(self._watchdog(slot), name=f"{self.job_id}:watch{slot.index}")
        span = self.tracer.span(
            "duroc.submit", parent=self.trace_ctx,
            job=self.job_id, slot=slot.index,
        )
        slot.trace_ctx = span.context
        try:
            handle = yield from self.duroc.gram.submit(
                slot.spec.contact,
                slot.spec.to_rsl(),
                callback=self._gram_listener.endpoint,
                params={
                    PARAM_CONTACT: self.port.endpoint,
                    PARAM_SLOT: slot.slot_id,
                },
                timeout=self.duroc.submit_timeout,
                ctx=span.context,
            )
        except (
            GramError,
            RPCTimeout,
            AuthenticationError,
            HostDown,
            RetryExhausted,
            CircuitOpen,
        ) as exc:
            span.finish(ok=False)
            if slot.state is SubjobState.SUBMITTING:
                self._slot_failed(slot, str(exc), DurocEvent.SUBJOB_FAILED)
            return
        span.finish(ok=True, site=slot.spec.contact)
        if slot.state is not SubjobState.SUBMITTING:
            # Deleted (or the whole request aborted) mid-submission.
            self._cancel_gram_async(handle)
            return
        slot.gram_handle = handle
        self._gram_listener.on(
            handle.job_id,
            lambda job_id, state, reason, s=slot: self._on_gram(s, state, reason),
        )
        slot.transition(SubjobState.SUBMITTED, env.now)
        self._probe(
            "duroc.slot.state",
            slot=slot.index,
            state="submitted",
            gram_job=handle.job_id,
        )
        self._emit(DurocEvent.SUBJOB_SUBMITTED, slot, handle.job_id)
        # Under a retry policy the submit reply may arrive long after
        # the job actually started: the processes may have fully
        # checked in while the slot was still SUBMITTING.  Settle the
        # barrier now rather than waiting for a retransmission.
        self._maybe_checkin(slot)
        self._kick()

    def _watchdog(self, slot: SubjobSlot) -> ProcessGenerator:
        """Enforce the subjob's check-in deadline.

        The deadline timer is retired (cancelled) as soon as the slot
        settles so that long default timeouts never keep an otherwise
        finished simulation alive.
        """
        timeout = slot.spec.timeout or self.duroc.default_subjob_timeout
        deadline = Deadline(self.env, timeout)
        timer = self.env.timeout(timeout)
        waiting_states = (
            SubjobState.PENDING,
            SubjobState.SUBMITTING,
            SubjobState.SUBMITTED,
        )
        while True:
            if self.state.terminal or slot.state not in waiting_states:
                timer.cancelled = True
                return
            kick = self.env.event()
            self._waiters.append(kick)
            yield timer | kick
            if timer.processed:
                break
        if self.state.terminal:
            return
        if deadline.expired and slot.state in waiting_states:
            self._slot_failed(
                slot,
                f"no check-in within {timeout:g}s",
                DurocEvent.SUBJOB_TIMEOUT,
            )

    def _heartbeat(self) -> ProcessGenerator:
        """Poll job managers to detect silent site deaths.

        A crashed machine takes its job manager with it, so no FAILED
        callback ever arrives; like the real DUROC, we poll each job
        contact and treat lost contact as subjob failure.  Contact
        counts as lost only after ``heartbeat_misses`` *consecutive*
        failed polls, so a lossy network eating one status reply does
        not take a healthy subjob down.
        """
        interval = self.duroc.heartbeat_interval
        allowed_misses = self.duroc.heartbeat_misses
        misses: dict[int, int] = {}

        def pollable() -> list[SubjobSlot]:
            return [
                slot
                for slot in self.slots
                if slot.gram_handle is not None
                and slot.state.live
                and (slot.gram_state is None or not slot.gram_state.terminal)
            ]

        while True:
            if self.state.terminal or self.state is RequestState.DONE:
                return
            if self.state is RequestState.RELEASED and not pollable():
                return  # everything finished; stop generating events
            yield self.env.timeout(interval)
            for slot in pollable():
                try:
                    state = yield from self.duroc.gram.status(
                        slot.gram_handle, timeout=interval,
                        retry=self.duroc.retry,
                    )
                except (RPCTimeout, HostDown, RetryExhausted, CircuitOpen):
                    misses[slot.slot_id] = misses.get(slot.slot_id, 0) + 1
                    if (
                        misses[slot.slot_id] >= allowed_misses
                        and slot.state.live
                        and not self.state.terminal
                    ):
                        self._slot_failed(
                            slot,
                            "lost contact with job manager",
                            DurocEvent.SUBJOB_FAILED,
                        )
                    continue
                misses.pop(slot.slot_id, None)
                self._on_gram(slot, state, slot.gram_handle.failure_reason)

    # -- barrier listener -------------------------------------------------------

    def _listen(self) -> ProcessGenerator:
        """Receive process check-ins."""
        while True:
            message = yield self.port.recv_kind(CHECKIN)
            payload = message.payload
            checkin = Checkin(
                slot_id=payload["slot_id"],
                rank=payload["rank"],
                ok=payload["ok"],
                reason=payload.get("reason"),
                endpoint=payload["endpoint"],
                time=self.env.now,
            )
            slot = self._slot_by_id.get(checkin.slot_id)
            if slot is None or not slot.state.live:
                # A stale process (substituted-away subjob, aborted
                # request): tell it to terminate.
                self._send_abort(checkin.endpoint, "stale subjob")
                continue
            if self.state.terminal:
                self._send_abort(checkin.endpoint, self.abort_reason or "aborted")
                continue
            if slot.state is SubjobState.RELEASED:
                # A retransmitted check-in whose RELEASE was lost: send
                # the stored configuration again.
                self.barrier.resend_release(checkin)
                continue
            table_before = self.barrier.tables.get(checkin.slot_id)
            if table_before is not None and checkin.rank in table_before.checkins:
                continue  # duplicate of an already-recorded check-in
            self.tracer.mark(
                "duroc.checkin",
                parent=message.trace_ctx,
                job=self.job_id,
                slot=slot.index,
                rank=checkin.rank,
                ok=checkin.ok,
            )
            table = self.barrier.record(checkin)
            if table is None:  # pragma: no cover - table exists for live slots
                continue
            if not checkin.ok:
                self._slot_failed(
                    slot,
                    f"process {checkin.rank} failed startup: {checkin.reason}",
                    DurocEvent.SUBJOB_FAILED,
                )
                continue
            self._maybe_checkin(slot)

    def _maybe_checkin(self, slot: SubjobSlot) -> None:
        """Transition ``slot`` to CHECKED_IN once its barrier settles.

        Called both when a check-in lands and when a (retried) submit
        finally reports SUBMITTED — whichever happens last.
        """
        table = self.barrier.tables.get(slot.slot_id)
        if table is None or not table.all_ok:
            return
        if slot.state is not SubjobState.SUBMITTED:
            return
        slot.transition(SubjobState.CHECKED_IN, self.env.now)
        self._emit(DurocEvent.SUBJOB_CHECKIN, slot, None)
        if (
            self.state is RequestState.RELEASED
            and slot.spec.start_type is SubjobType.OPTIONAL
        ):
            self._release_latecomer(slot)
        self._kick()

    def _send_abort(self, endpoint: Endpoint, reason: str) -> None:
        try:
            self.port.send(endpoint, ABORT, {"reason": reason})
        except HostDown:  # pragma: no cover
            pass

    # -- GRAM state callbacks ---------------------------------------------------

    def _on_gram(
        self, slot: SubjobSlot, state: JobState, reason: Optional[str]
    ) -> None:
        if state is not slot.gram_state:
            self._probe(
                "duroc.gram",
                slot=slot.index,
                state=state.value,
                terminal=state.terminal,
            )
        slot.gram_state = state
        if state.terminal and slot.gram_handle is not None:
            # A terminal GRAM job never transitions again: drop the
            # per-job handler so long-lived co-allocators do not
            # accumulate one listener entry per finished subjob.
            self._gram_listener.off(slot.gram_handle.job_id)
        if state is JobState.FAILED and slot.state in (
            SubjobState.SUBMITTED,
            SubjobState.CHECKED_IN,
        ):
            self._slot_failed(
                slot, f"GRAM job failed: {reason}", DurocEvent.SUBJOB_FAILED
            )
        elif state is JobState.FAILED and slot.state is SubjobState.RELEASED:
            # Post-release failure: §3.4 monitoring.  Required subjobs
            # still take the whole computation down.
            self._slot_failed(
                slot, f"GRAM job failed: {reason}", DurocEvent.SUBJOB_FAILED
            )
        elif state.terminal:
            self._kick()

    # -- failure semantics (the heart of §3.2) --------------------------------

    def _slot_failed(self, slot: SubjobSlot, reason: str, kind: DurocEvent) -> None:
        if slot.state.terminal:
            return
        slot.failure_reason = reason
        was_released = slot.state is SubjobState.RELEASED
        start_type = slot.spec.start_type
        slot.transition(SubjobState.FAILED, self.env.now)
        self._probe(
            "duroc.slot.failed",
            slot=slot.index,
            start_type=start_type.value,
            reason=reason,
            released=was_released,
        )
        self._cancel_slot_resources(slot, reason)
        notification = Notification(
            event=kind, time=self.env.now, subjob=slot.index, detail=reason
        )
        self.callbacks.emit(notification)

        if start_type is SubjobType.REQUIRED:
            # "Failure or timeout of a required resource causes the
            # entire computation to be terminated, regardless of whether
            # a commit has been issued or not."
            if not self.state.terminal:
                if was_released or self.state is RequestState.RELEASED:
                    self.kill(
                        f"required subjob {slot.index} failed: {reason}",
                        subjob=slot.index,
                    )
                else:
                    self._abort(
                        f"required subjob {slot.index} failed: {reason}",
                        subjob=slot.index,
                    )
            return
        if start_type is SubjobType.INTERACTIVE and not was_released:
            # "...results in a callback to the application, which can
            # then delete the resource from its resource set or
            # substitute other resources."
            if self.interactive_handler is not None and self.state.editable:
                self.interactive_handler(self, slot, notification)
            # Without a handler the failed subjob is simply dropped from
            # the configuration (equivalent to delete).
        self._kick()

    def _cancel_slot_resources(self, slot: SubjobSlot, reason: str) -> None:
        """Cancel the slot's GRAM job and abort its barrier waiters."""
        self.barrier.abort_slot(slot.slot_id, reason)
        cancelling = slot.gram_handle is not None and (
            slot.gram_state is None or not slot.gram_state.terminal
        )
        self._probe(
            "duroc.cancel", slot=slot.index, gram=cancelling, reason=reason
        )
        if cancelling:
            self._cancel_gram_async(slot.gram_handle)

    def _cancel_gram_async(self, handle: JobHandle) -> None:
        def canceller(env: "Environment") -> ProcessGenerator:
            try:
                yield from self.duroc.gram.cancel(handle, timeout=30.0)
            except (RPCTimeout, GramError, HostDown, RetryExhausted, CircuitOpen):
                pass  # the site may be dead; nothing more we can do

        self.env.process(canceller(self.env), name=f"{self.job_id}:cancel")

    def _retire(self, slot: SubjobSlot, state: SubjobState, reason: str) -> None:
        self._cancel_slot_resources(slot, reason)
        slot.transition(state, self.env.now)
        self.barrier.discard_table(slot.slot_id)
        # Retired slots leave the live index (messages naming them are
        # answered "stale subjob" whether the id resolves to a retired
        # slot or to nothing); slot.state.terminal guards both paths.
        self._slot_by_id.pop(slot.slot_id, None)

    def _abort(
        self,
        reason: str,
        subjob: Optional[int] = None,
        origin: str = "subjob-failure",
    ) -> None:
        """Pre-release failure of the whole request."""
        if self.state.terminal:
            return
        self.abort_reason = reason
        self.abort_subjob = subjob
        self._probe(
            "duroc.abort.decision",
            origin=origin,
            subjob=subjob,
            blame_start_type=self._blame_start_type(subjob),
            reason=reason,
        )
        self._transition(RequestState.ABORTED)
        self._teardown(reason)
        self._emit(DurocEvent.REQUEST_ABORTED, None, reason)
        self._finish_trace("aborted")
        self._kick()

    def _teardown(self, reason: str) -> None:
        for slot in self.slots:
            if slot.state.live:
                self._cancel_slot_resources(slot, reason)
                slot.transition(SubjobState.TERMINATED, self.env.now)

    # -- release ---------------------------------------------------------------

    def _release(self) -> list[SubjobSlot]:
        """Release the barrier for every checked-in subjob."""
        ready = self.checked_in_slots()
        slot_ids = [slot.slot_id for slot in ready]
        configs = self.barrier.build_config(slot_ids)
        for slot in ready:
            self._record_barrier_span(slot)
            self.barrier.release_slot(slot.slot_id, configs[slot.slot_id])
            slot.transition(SubjobState.RELEASED, self.env.now)
            self._emit(DurocEvent.SUBJOB_RELEASED, slot, None)
        self._transition(RequestState.RELEASED)
        self.released_at = self.env.now
        self._emit(DurocEvent.REQUEST_RELEASED, None, None)
        self.tracer.mark("duroc.release", parent=self.trace_ctx, job=self.job_id)
        self._finish_trace("released")
        self._kick()
        return ready

    def _record_barrier_span(self, slot: SubjobSlot) -> None:
        """Record the slot's barrier occupancy: first check-in → release."""
        table = self.barrier.tables.get(slot.slot_id)
        if table is None or not table.checkins:
            return
        first = min(c.time for c in table.checkins.values())
        self.tracer.record(
            "duroc.barrier", first, self.env.now,
            parent=slot.trace_ctx, job=self.job_id, slot=slot.index,
        )

    def _release_latecomer(self, slot: SubjobSlot) -> None:
        """An optional subjob checked in after release: let it join."""
        members = self.released_slots() + [slot]
        slot_ids = [s.slot_id for s in members]
        configs = self.barrier.build_config(slot_ids)
        self._record_barrier_span(slot)
        self.barrier.release_slot(slot.slot_id, configs[slot.slot_id])
        slot.transition(SubjobState.RELEASED, self.env.now)
        self._emit(DurocEvent.SUBJOB_RELEASED, slot, "late join")

    def __repr__(self) -> str:
        return (
            f"<DurocJob {self.job_id} {self.state.value} "
            f"slots={[s.state.value[:4] for s in self.slots]}>"
        )


class Duroc:
    """The co-allocator service: creates and tracks :class:`DurocJob` s."""

    def __init__(
        self,
        network: Network,
        host: str,
        credential: Credential,
        auth: Optional[AuthConfig] = None,
        default_subjob_timeout: float = 300.0,
        submit_timeout: float = 60.0,
        heartbeat_interval: float = 1.0,
        heartbeat_misses: int = 1,
        sequential_submission: bool = True,
        tracer: Optional[Tracer] = None,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        breakers: Optional[BreakerBoard] = None,
    ) -> None:
        self.network = network
        self.env: "Environment" = network.env
        self.host = host
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Retry policy for GRAM submissions (None = single attempt).
        #: Backoff jitter draws from ``rng`` — pass a seeded registry
        #: stream (``Grid.duroc()`` does) for reproducible retries.
        self.retry = retry
        if retry is not None and breakers is None:
            breakers = BreakerBoard(network.env, metrics=self.tracer.metrics)
        self.breakers = breakers
        self.gram = GramClient(
            network, host, credential, auth, tracer=self.tracer,
            retry=retry, rng=rng, breakers=breakers,
        )
        self.default_subjob_timeout = default_subjob_timeout
        self.submit_timeout = submit_timeout
        #: The paper's DUROC submits subjobs strictly sequentially
        #: (Fig. 5); False enables the concurrent-submission ablation.
        self.sequential_submission = sequential_submission
        #: Seconds between job-manager liveness polls (0 disables).
        self.heartbeat_interval = heartbeat_interval
        #: Consecutive failed polls before a subjob is declared lost.
        #: The default (1) is the legacy fail-fast behaviour; raise it
        #: on lossy networks so one eaten status reply is not death.
        if heartbeat_misses < 1:
            raise ValueError(
                f"heartbeat_misses must be >= 1, got {heartbeat_misses!r}"
            )
        self.heartbeat_misses = heartbeat_misses
        self.jobs: list[DurocJob] = []
        self._job_counter = itertools.count(1)

    def submit(self, request: CoAllocationRequest) -> DurocJob:
        """Begin co-allocation; returns the editable job handle.

        Subjob submission proceeds in the background; use the handle's
        ``commit()`` (and optionally ``wait``/callbacks) to drive the
        transaction.
        """
        job = DurocJob(self, request)
        # API surface: callers index duroc.jobs for handles, so every
        # submitted job stays listed.  The orchestrator-as-a-service
        # refactor (ROADMAP item 3) will move retention behind an
        # explicit request queue.
        self.jobs.append(job)  # repro: noqa mem-grow-only-attr
        return job

    def run(
        self, request: CoAllocationRequest
    ) -> Generator[Event, Any, DurocResult]:
        """Generator: submit and immediately commit (convenience)."""
        job = self.submit(request)
        result = yield from job.commit()
        return result
