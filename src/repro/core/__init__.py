"""The paper's contribution: co-allocation mechanisms and strategies.

* :class:`Duroc` / :class:`DurocJob` — the interactive-transaction
  co-allocator (editable requests, required/interactive/optional
  subjobs, two-phase-commit barrier, monitoring/control);
* :class:`Grab` — the atomic-transaction co-allocator;
* :func:`repro.core.applib.barrier` — the application-side barrier;
* :class:`DurocConfig` — the §3.3 configuration mechanisms.
"""

from repro.core.applib import barrier, make_program
from repro.core.atomic import Grab
from repro.core.callbacks import CallbackDispatcher, DurocEvent, Notification
from repro.core.coallocator import (
    Duroc,
    DurocJob,
    DurocResult,
    SubjobSlot,
)
from repro.core.config import DurocConfig
from repro.core.request import CoAllocationRequest, SubjobSpec, SubjobType
from repro.core.states import RequestState, SubjobState

__all__ = [
    "CallbackDispatcher",
    "CoAllocationRequest",
    "Duroc",
    "DurocConfig",
    "DurocEvent",
    "DurocJob",
    "DurocResult",
    "Grab",
    "Notification",
    "RequestState",
    "SubjobSlot",
    "SubjobSpec",
    "SubjobState",
    "SubjobType",
    "barrier",
    "make_program",
]
