"""Unparser: Specification tree → canonical RSL text.

``parse(unparse(spec))`` is the identity on specification trees (the
property tests check this), with strings quoted only when necessary.
"""

from __future__ import annotations

from repro.rsl.ast import (
    Conjunction,
    Disjunction,
    MultiRequest,
    Relation,
    Specification,
    Value,
    ValueSequence,
    Variable,
)

_BARE_FORBIDDEN = set(" \t\n()&|+=\"#$")


def _format_value(value: Value) -> str:
    if isinstance(value, Variable):
        return f"$({value.name})"
    if isinstance(value, ValueSequence):
        inner = " ".join(_format_value(v) for v in value.values)
        return f"({inner})"
    if isinstance(value, Specification):
        return f"({unparse(value)})"
    if isinstance(value, bool):  # bool is an int subclass; keep it textual
        return '"True"' if value else '"False"'
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, float):
        # 'e+' would lex as punctuation; 1e+20 and 1e20 parse identically.
        return repr(value).replace("e+", "e")
    text = str(value)
    needs_quote = (
        text == ""
        or any(c in _BARE_FORBIDDEN for c in text)
        or _looks_numeric(text)
    )
    if needs_quote:
        return '"' + text.replace('"', '""') + '"'
    return text


def _looks_numeric(text: str) -> bool:
    """A string that would re-parse as a number must be quoted."""
    try:
        int(text)
        return True
    except ValueError:
        pass
    try:
        float(text)
        return True
    except ValueError:
        return False


def unparse(spec: Specification) -> str:
    """Render a specification as canonical single-line RSL text."""
    if isinstance(spec, Relation):
        values = " ".join(_format_value(v) for v in spec.values)
        return f"{spec.attribute}={values}"
    if isinstance(spec, MultiRequest):
        prefix = "+"
    elif isinstance(spec, Disjunction):
        prefix = "|"
    elif isinstance(spec, Conjunction):
        prefix = "&"
    else:
        raise TypeError(f"cannot unparse {spec!r}")
    inner = "".join(f"({unparse(child)})" for child in spec.children)
    return prefix + inner


def pretty(spec: Specification, indent: int = 0) -> str:
    """Render with one child per line, as in the paper's Fig. 1."""
    pad = "    " * indent
    if isinstance(spec, Relation):
        return pad + unparse(spec)
    prefix = {MultiRequest: "+", Disjunction: "|", Conjunction: "&"}[type(spec)]
    lines = [pad + prefix]
    for child in spec.children:
        body = pretty(child, indent + 1).lstrip()
        lines.append(f"{pad}({body})")
    return "\n".join(lines)
