"""Tokenizer for RSL text.

Token kinds: ``(`` ``)`` ``&`` ``|`` ``+`` ``=``, bare-word ATOMs
(``count``, ``4``, ``my-host.domain``) and quoted STRINGs
(``"a value with spaces"``, with ``""`` as the escaped quote, as in
Globus RSL).  Quoted strings are never numerically coerced by the
parser.  ``#`` starts a comment running to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import RSLSyntaxError

#: Characters that terminate a bare word.
_PUNCT = set("()&|+=\"#$")


@dataclass(frozen=True)
class Token:
    kind: str  # one of: LPAREN RPAREN AMP PIPE PLUS EQUALS DOLLAR ATOM STRING EOF
    text: str
    pos: int  # character offset, for error messages
    line: int
    col: int

    def __repr__(self) -> str:
        return f"<{self.kind} {self.text!r} @{self.line}:{self.col}>"


_SIMPLE = {
    "(": "LPAREN",
    ")": "RPAREN",
    "&": "AMP",
    "|": "PIPE",
    "+": "PLUS",
    "=": "EQUALS",
    "$": "DOLLAR",
}


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens, ending with a single EOF token."""
    i = 0
    line = 1
    line_start = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        if ch == "#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        col = i - line_start + 1
        if ch in _SIMPLE:
            yield Token(_SIMPLE[ch], ch, i, line, col)
            i += 1
            continue
        if ch == '"':
            start = i
            i += 1
            chunks: list[str] = []
            while True:
                if i >= n:
                    raise RSLSyntaxError(
                        f"unterminated string starting at line {line}, col {col}"
                    )
                if text[i] == '"':
                    if i + 1 < n and text[i + 1] == '"':
                        chunks.append('"')
                        i += 2
                        continue
                    i += 1
                    break
                if text[i] == "\n":
                    line += 1
                    line_start = i + 1
                chunks.append(text[i])
                i += 1
            yield Token("STRING", "".join(chunks), start, line, col)
            continue
        # Bare word.
        start = i
        while i < n and not text[i].isspace() and text[i] not in _PUNCT:
            i += 1
        if i == start:
            raise RSLSyntaxError(
                f"unexpected character {ch!r} at line {line}, col {col}"
            )
        yield Token("ATOM", text[start:i], start, line, col)
    yield Token("EOF", "", n, line, n - line_start + 1)
