"""Resource Specification Language: AST, parser, printer, edits."""

from repro.rsl.ast import (
    Conjunction,
    ValueSequence,
    Variable,
    Disjunction,
    MultiRequest,
    Relation,
    Specification,
    conj,
)
from repro.rsl.attributes import (
    COUNT,
    EXECUTABLE,
    RESOURCE_MANAGER_CONTACT,
    START_TYPES,
    SUBJOB_START_TYPE,
    spec_attributes,
    validate_subjob_spec,
)
from repro.rsl.parser import parse, parse_multirequest
from repro.rsl.printer import pretty, unparse
from repro.rsl.transform import (
    add_subjob,
    delete_subjob,
    resolve_substitutions,
    retarget_subjob,
    substitute_subjob,
    substitute_variables,
)

__all__ = [
    "COUNT",
    "Conjunction",
    "Disjunction",
    "EXECUTABLE",
    "MultiRequest",
    "RESOURCE_MANAGER_CONTACT",
    "Relation",
    "START_TYPES",
    "SUBJOB_START_TYPE",
    "Specification",
    "ValueSequence",
    "Variable",
    "add_subjob",
    "conj",
    "delete_subjob",
    "parse",
    "parse_multirequest",
    "pretty",
    "resolve_substitutions",
    "retarget_subjob",
    "spec_attributes",
    "substitute_subjob",
    "substitute_variables",
    "unparse",
    "validate_subjob_spec",
]
