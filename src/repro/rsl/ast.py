"""Abstract syntax for the Resource Specification Language (RSL).

The grammar follows Globus RSL as used in the paper (Fig. 1):

* a *relation* — ``(attribute = value ...)`` binds an attribute to one
  or more values;
* a *conjunction* — ``&`` prefix: all sub-specifications apply to one
  request (one subjob);
* a *disjunction* — ``|`` prefix: alternatives (used by brokers);
* a *multi-request* — ``+`` prefix: the co-allocation operator — each
  branch is an independent subjob handled by a (possibly different)
  resource manager.

Values are strings, integers, floats, or nested specifications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union

#: A scalar RSL value.
Scalar = Union[str, int, float]
Value = Union[Scalar, "Specification"]


class Specification:
    """Base class for RSL specification nodes."""

    def walk(self) -> Iterator["Specification"]:
        """Yield this node and all descendants, preorder."""
        yield self

    def unparse(self) -> str:
        from repro.rsl.printer import unparse

        return unparse(self)

    def __str__(self) -> str:
        return self.unparse()


@dataclass(frozen=True)
class Variable(Specification):
    """``$(NAME)``: a reference resolved against ``rslSubstitution``
    bindings (or bindings the submitting agent supplies)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")


@dataclass(frozen=True)
class ValueSequence(Specification):
    """``(v1 v2 ...)`` appearing as a relation value.

    Globus RSL uses these for structured attribute values, e.g.
    ``(environment=(HOME /home/u)(PATH /bin))``.
    """

    values: tuple[Value, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))

    def walk(self) -> Iterator[Specification]:
        yield self
        for v in self.values:
            if isinstance(v, Specification):
                yield from v.walk()

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Value]:
        return iter(self.values)


@dataclass(frozen=True)
class Relation(Specification):
    """``(attribute = v1 v2 ...)``: attribute bound to value list."""

    attribute: str
    values: tuple[Value, ...]

    def __post_init__(self) -> None:
        if not self.attribute:
            raise ValueError("relation attribute must be non-empty")
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))

    @property
    def value(self) -> Value:
        """The single value (error if the relation is multi-valued)."""
        if len(self.values) != 1:
            raise ValueError(
                f"relation {self.attribute!r} has {len(self.values)} values"
            )
        return self.values[0]

    def walk(self) -> Iterator[Specification]:
        yield self
        for v in self.values:
            if isinstance(v, Specification):
                yield from v.walk()


@dataclass(frozen=True)
class _Composite(Specification):
    children: tuple[Specification, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.children, tuple):
            object.__setattr__(self, "children", tuple(self.children))
        for child in self.children:
            if not isinstance(child, Specification):
                raise TypeError(f"child {child!r} is not a Specification")

    def walk(self) -> Iterator[Specification]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __len__(self) -> int:
        return len(self.children)

    def __iter__(self) -> Iterator[Specification]:
        return iter(self.children)


@dataclass(frozen=True)
class Conjunction(_Composite):
    """``&(...)(...)``: all constraints apply to a single request."""

    # -- attribute helpers used throughout the stack -----------------------

    def relations(self) -> dict[str, Relation]:
        """Mapping of attribute name → relation (last wins)."""
        out: dict[str, Relation] = {}
        for child in self.children:
            if isinstance(child, Relation):
                out[child.attribute.lower()] = child
        return out

    def get(self, attribute: str, default: Value | None = None) -> Value | None:
        """The single value of ``attribute`` (case-insensitive)."""
        rel = self.relations().get(attribute.lower())
        return default if rel is None else rel.value

    def with_value(self, attribute: str, *values: Value) -> "Conjunction":
        """Copy of this conjunction with ``attribute`` set to ``values``."""
        replaced = False
        children: list[Specification] = []
        for child in self.children:
            if isinstance(child, Relation) and child.attribute.lower() == attribute.lower():
                if not replaced:
                    children.append(Relation(child.attribute, tuple(values)))
                    replaced = True
                # Drop duplicate bindings of the same attribute.
            else:
                children.append(child)
        if not replaced:
            children.append(Relation(attribute, tuple(values)))
        return Conjunction(tuple(children))


@dataclass(frozen=True)
class Disjunction(_Composite):
    """``|(...)(...)``: alternative specifications."""


@dataclass(frozen=True)
class MultiRequest(_Composite):
    """``+(...)(...)``: the co-allocation operator — one branch per subjob."""

    def subjob_specs(self) -> tuple[Specification, ...]:
        return self.children


def conj(**attrs: Value | Sequence[Scalar]) -> Conjunction:
    """Convenience constructor: ``conj(count=4, executable="worker")``.

    Sequence values become multi-valued relations.
    """
    children: list[Specification] = []
    for name, value in attrs.items():
        if isinstance(value, (list, tuple)):
            children.append(Relation(name, tuple(value)))
        else:
            children.append(Relation(name, (value,)))
    return Conjunction(tuple(children))
