"""Recursive-descent parser for RSL.

Grammar (after Globus RSL, restricted to the constructs the paper uses)::

    spec        := multi | disj | conj | relation
    multi       := '+' speclist
    disj        := '|' speclist
    conj        := '&' speclist
    speclist    := '(' spec ')' { '(' spec ')' }
    relation    := atom '=' value { value }
    value       := atom | '(' spec ')'

Numbers are converted to int/float; everything else stays a string.
"""

from __future__ import annotations

from typing import Union

from repro.errors import RSLSyntaxError
from repro.rsl.ast import (
    Conjunction,
    Disjunction,
    MultiRequest,
    Relation,
    Specification,
    Value,
    ValueSequence,
    Variable,
)
from repro.rsl.lexer import Token, tokenize


def _coerce(text: str) -> Union[str, int, float]:
    """Interpret a bare atom as int, then float, else string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = list(tokenize(text))
        self.pos = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.current
        if token.kind != kind:
            raise RSLSyntaxError(
                f"expected {kind} but found {token.kind} ({token.text!r}) "
                f"at line {token.line}, col {token.col}"
            )
        return self.advance()

    def parse(self) -> Specification:
        spec = self.parse_spec()
        token = self.current
        if token.kind != "EOF":
            raise RSLSyntaxError(
                f"trailing input {token.text!r} at line {token.line}, col {token.col}"
            )
        return spec

    def parse_spec(self) -> Specification:
        token = self.current
        if token.kind == "PLUS":
            self.advance()
            return MultiRequest(tuple(self.parse_speclist()))
        if token.kind == "PIPE":
            self.advance()
            return Disjunction(tuple(self.parse_speclist()))
        if token.kind == "AMP":
            self.advance()
            return Conjunction(tuple(self.parse_speclist()))
        if token.kind == "ATOM":
            return self.parse_relation()
        raise RSLSyntaxError(
            f"expected a specification but found {token.kind} "
            f"at line {token.line}, col {token.col}"
        )

    def parse_speclist(self) -> list[Specification]:
        specs: list[Specification] = []
        self.expect("LPAREN")
        specs.append(self.parse_spec())
        self.expect("RPAREN")
        while self.current.kind == "LPAREN":
            self.advance()
            specs.append(self.parse_spec())
            self.expect("RPAREN")
        return specs

    def parse_relation(self) -> Relation:
        name = self.expect("ATOM")
        self.expect("EQUALS")
        values = self.parse_values()
        if not values:
            raise RSLSyntaxError(
                f"relation {name.text!r} has no value "
                f"at line {name.line}, col {name.col}"
            )
        return Relation(name.text, tuple(values))

    def parse_values(self) -> list[Value]:
        """Zero or more values: atoms, strings, or ``(v1 v2 ...)`` groups."""
        values: list[Value] = []
        while True:
            token = self.current
            if token.kind == "ATOM":
                self.advance()
                values.append(_coerce(token.text))
            elif token.kind == "STRING":
                self.advance()
                values.append(token.text)
            elif token.kind == "DOLLAR":
                self.advance()
                self.expect("LPAREN")
                name = self.expect("ATOM")
                self.expect("RPAREN")
                values.append(Variable(str(name.text)))
            elif token.kind == "LPAREN":
                self.advance()
                values.append(ValueSequence(tuple(self.parse_values())))
                self.expect("RPAREN")
            else:
                break
        return values


def parse(text: str) -> Specification:
    """Parse RSL text into a :class:`Specification` tree."""
    if not text or not text.strip():
        raise RSLSyntaxError("empty RSL text")
    return _Parser(text).parse()


def parse_multirequest(text: str) -> MultiRequest:
    """Parse text that must be a ``+`` multi-request (co-allocation)."""
    spec = parse(text)
    if not isinstance(spec, MultiRequest):
        raise RSLSyntaxError(
            f"expected a '+' multi-request, got {type(spec).__name__}"
        )
    return spec
