"""Standard RSL attributes and request validation.

The attributes follow GRAM/DUROC usage in the paper: every subjob names
its target resource manager (``resourceManagerContact``), a process
``count``, an ``executable``, and — for DUROC — a ``subjobStartType`` of
``required`` / ``interactive`` / ``optional`` (paper §3.2).
"""

from __future__ import annotations

from typing import Any

from repro.errors import RSLValidationError
from repro.rsl.ast import Conjunction, Specification

#: Canonical attribute names (RSL attribute matching is case-insensitive).
RESOURCE_MANAGER_CONTACT = "resourceManagerContact"
COUNT = "count"
EXECUTABLE = "executable"
ARGUMENTS = "arguments"
DIRECTORY = "directory"
ENVIRONMENT = "environment"
MAX_TIME = "maxTime"
JOB_TYPE = "jobType"
SUBJOB_START_TYPE = "subjobStartType"
SUBJOB_LABEL = "label"
SUBJOB_TIMEOUT = "subjobTimeout"
MIN_MEMORY = "minMemory"
QUEUE = "queue"
PROJECT = "project"
#: Extension (paper §5 future work): bind the request to an advance
#: reservation previously granted by the local scheduler.
RESERVATION_ID = "reservationId"

#: Start-type values defined by the paper.
START_TYPES = ("required", "interactive", "optional")

#: Attributes a GRAM subjob must carry.
REQUIRED_ATTRIBUTES = (RESOURCE_MANAGER_CONTACT, COUNT, EXECUTABLE)

#: All attributes this implementation understands (lowercased keys).
KNOWN_ATTRIBUTES = {
    name.lower(): name
    for name in (
        RESOURCE_MANAGER_CONTACT,
        COUNT,
        EXECUTABLE,
        ARGUMENTS,
        DIRECTORY,
        ENVIRONMENT,
        MAX_TIME,
        JOB_TYPE,
        SUBJOB_START_TYPE,
        SUBJOB_LABEL,
        SUBJOB_TIMEOUT,
        MIN_MEMORY,
        QUEUE,
        PROJECT,
        RESERVATION_ID,
    )
}


def canonical_name(attribute: str) -> str:
    """Map an attribute to its canonical spelling (unknown pass through)."""
    return KNOWN_ATTRIBUTES.get(attribute.lower(), attribute)


def validate_subjob_spec(spec: Specification, strict: bool = False) -> Conjunction:
    """Validate one subjob specification (a branch of a multi-request).

    Checks structure (must be a conjunction of relations), required
    attributes, and value sanity.  With ``strict``, unknown attributes
    are rejected rather than passed through.  Returns the conjunction.
    """
    if not isinstance(spec, Conjunction):
        raise RSLValidationError(
            f"subjob spec must be a conjunction, got {type(spec).__name__}"
        )
    relations = spec.relations()

    for name in REQUIRED_ATTRIBUTES:
        if name.lower() not in relations:
            raise RSLValidationError(f"subjob spec missing attribute {name!r}")

    count = relations[COUNT.lower()].value
    if not isinstance(count, int) or count <= 0:
        raise RSLValidationError(f"count must be a positive integer, got {count!r}")

    start = relations.get(SUBJOB_START_TYPE.lower())
    if start is not None and start.value not in START_TYPES:
        raise RSLValidationError(
            f"subjobStartType must be one of {START_TYPES}, got {start.value!r}"
        )

    timeout = relations.get(SUBJOB_TIMEOUT.lower())
    if timeout is not None:
        value = timeout.value
        if not isinstance(value, (int, float)) or value <= 0:
            raise RSLValidationError(
                f"subjobTimeout must be a positive number, got {value!r}"
            )

    if strict:
        for key in relations:
            if key not in KNOWN_ATTRIBUTES:
                raise RSLValidationError(f"unknown attribute {key!r}")

    return spec


def spec_attributes(spec: Conjunction) -> dict[str, Any]:
    """Flatten a conjunction into a {canonical name: value(s)} dict."""
    out: dict[str, Any] = {}
    for key, rel in spec.relations().items():
        name = canonical_name(key)
        out[name] = rel.values[0] if len(rel.values) == 1 else list(rel.values)
    return out
