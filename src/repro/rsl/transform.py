"""Edit operations on RSL multi-requests.

The interactive transaction strategy's defining feature (paper §3.2) is
that "the contents of a co-allocation request can be modified — via
editing operations add, delete, and substitute — until the commit
operation".  These functions implement those edits as pure
transformations on :class:`MultiRequest` trees; the DUROC co-allocator
applies the same operations to its live subjob table.
"""

from __future__ import annotations

from repro.errors import RSLValidationError
from repro.rsl.ast import Conjunction, MultiRequest, Specification


def add_subjob(request: MultiRequest, spec: Specification) -> MultiRequest:
    """Append a subjob specification to the multi-request."""
    return MultiRequest(request.children + (spec,))


def delete_subjob(request: MultiRequest, index: int) -> MultiRequest:
    """Remove the subjob at ``index``."""
    _check_index(request, index)
    children = request.children
    return MultiRequest(children[:index] + children[index + 1:])


def substitute_subjob(
    request: MultiRequest, index: int, spec: Specification
) -> MultiRequest:
    """Replace the subjob at ``index`` with ``spec``."""
    _check_index(request, index)
    children = list(request.children)
    children[index] = spec
    return MultiRequest(tuple(children))


def retarget_subjob(
    request: MultiRequest, index: int, new_contact: str
) -> MultiRequest:
    """Substitute only the resource manager contact of subjob ``index``.

    The common substitution in practice: same job, different machine.
    """
    from repro.rsl.attributes import RESOURCE_MANAGER_CONTACT

    _check_index(request, index)
    spec = request.children[index]
    if not isinstance(spec, Conjunction):
        raise RSLValidationError("can only retarget a conjunction subjob spec")
    return substitute_subjob(
        request, index, spec.with_value(RESOURCE_MANAGER_CONTACT, new_contact)
    )


def _check_index(request: MultiRequest, index: int) -> None:
    if not 0 <= index < len(request.children):
        raise RSLValidationError(
            f"subjob index {index} out of range 0..{len(request.children) - 1}"
        )


# ---------------------------------------------------------------------------
# Variable substitution: $(NAME) references and rslSubstitution bindings
# ---------------------------------------------------------------------------

#: The binding attribute, as in Globus RSL.
RSL_SUBSTITUTION = "rslSubstitution"


def substitute_variables(spec: Specification, bindings: dict) -> Specification:
    """Resolve every ``$(NAME)`` in ``spec`` against ``bindings``.

    Raises :class:`RSLValidationError` on unbound references.
    """
    from repro.rsl.ast import (
        Disjunction,
        MultiRequest as _Multi,
        Relation,
        ValueSequence,
        Variable,
    )

    def resolve_value(value):
        if isinstance(value, Variable):
            if value.name not in bindings:
                raise RSLValidationError(f"unbound RSL variable $({value.name})")
            return bindings[value.name]
        if isinstance(value, ValueSequence):
            return ValueSequence(tuple(resolve_value(v) for v in value.values))
        return value

    if isinstance(spec, Relation):
        return Relation(spec.attribute, tuple(resolve_value(v) for v in spec.values))
    if isinstance(spec, Conjunction):
        return Conjunction(
            tuple(substitute_variables(c, bindings) for c in spec.children)
        )
    if isinstance(spec, Disjunction):
        return Disjunction(
            tuple(substitute_variables(c, bindings) for c in spec.children)
        )
    if isinstance(spec, _Multi):
        return _Multi(
            tuple(substitute_variables(c, bindings) for c in spec.children)
        )
    return spec


def resolve_substitutions(spec: Conjunction, extra: dict | None = None) -> Conjunction:
    """Apply a conjunction's own ``rslSubstitution`` bindings.

    ``(rslSubstitution=(NAME value)...)`` relations are read (augmented
    by ``extra`` bindings, which take precedence), every ``$(NAME)`` in
    the remaining relations is resolved, and the binding relation itself
    is removed from the result.
    """
    from repro.rsl.ast import Relation, ValueSequence

    bindings: dict = {}
    rest: list[Specification] = []
    for child in spec.children:
        if (
            isinstance(child, Relation)
            and child.attribute.lower() == RSL_SUBSTITUTION.lower()
        ):
            for item in child.values:
                if not (isinstance(item, ValueSequence) and len(item) == 2):
                    raise RSLValidationError(
                        "rslSubstitution entries must be (NAME value) pairs"
                    )
                name, value = item.values
                bindings[str(name)] = value
        else:
            rest.append(child)
    if extra:
        bindings.update(extra)
    resolved = substitute_variables(Conjunction(tuple(rest)), bindings)
    assert isinstance(resolved, Conjunction)
    return resolved
