"""Core event primitives for the discrete-event kernel.

The design follows the classic generator-driven simulation style (as in
SimPy): an :class:`Event` is a one-shot occurrence with a value, a list
of callbacks, and three states (untriggered, triggered-ok,
triggered-failed).  Simulated processes ``yield`` events to suspend until
they fire.

Events are deliberately tiny objects; the kernel schedules *events*, and
processes are themselves events (they fire when the generator returns),
which makes ``yield proc`` a join and allows :class:`Condition` trees.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simcore.environment import Environment

#: Sort-priority for events scheduled at the same instant.  URGENT events
#: (process resumptions) run before NORMAL ones so a process observes the
#: effects of events that fired "now" before new NORMAL events at the same
#: timestamp are processed.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` schedules it; once the kernel processes it, all attached
    callbacks run exactly once.  Attaching a callback to an event that
    has already been processed raises, because the callback would never
    run — use :meth:`processed` to guard.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "cancelled")

    #: Sentinel for "no value yet".
    PENDING = object()

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks to invoke (with the event) when processed.  ``None``
        #: once the event has been processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = Event.PENDING
        self._ok: bool = True
        self._defused: bool = False
        #: A cancelled scheduled event is silently dropped by the kernel
        #: without advancing the clock — used to retire timers (e.g. a
        #: watchdog deadline) so they cannot prolong a simulation.
        self.cancelled: bool = False

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not Event.PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is Event.PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """True if a failure was handled (suppresses crash propagation)."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=NORMAL, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        A failed event re-raises ``exception`` inside every process
        waiting on it.  If nobody waits and the failure is never defused
        the kernel surfaces the exception when the event is processed.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=NORMAL, delay=0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self, priority=NORMAL, delay=0.0)

    # -- composition -----------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        env.schedule(self, priority=NORMAL, delay=self.delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r}>"


class ConditionValue:
    """Ordered mapping of the events a condition has collected.

    Behaves like a read-only dict keyed by the original event objects so
    callers can write ``result[ev_a]``; iteration order is trigger-set
    construction order.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def todict(self) -> dict[Event, Any]:
        return {event: event.value for event in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a boolean combination of events (``&`` / ``|``).

    The condition fires as soon as ``evaluate(events, n_triggered)``
    returns true, with a :class:`ConditionValue` of all events triggered
    *so far*.  If any constituent fails, the condition fails with that
    exception.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")

        # Evaluate with zero triggered first (e.g. all_of([]) is true).
        if self._evaluate(self._events, 0):
            self.succeed(ConditionValue())
            return

        check = self._check
        for event in self._events:
            if event.processed:
                check(event)
            else:
                event.callbacks.append(check)

    def _populate_value(self, value: ConditionValue) -> None:
        collected = value.events
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.processed and event not in collected:
                collected.append(event)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            # Any failure fails the whole condition.
            event.defused = True
            self.fail(event.value)
        elif self._evaluate(self._events, self._count):
            value = ConditionValue()
            self._populate_value(value)
            self.succeed(value)

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """True when *all* events have triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        """True when *any* event has triggered (vacuously true if none)."""
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Fires when every event in ``events`` has fired."""

    # Without its own __slots__ a subclass of a slotted base regains a
    # per-instance __dict__ — one dict per fan-in event.
    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Fires when the first event in ``events`` fires."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
