"""Generator-driven simulated processes.

A :class:`Process` wraps a Python generator.  Each ``yield <event>``
suspends the process until the event fires; the event's value becomes
the result of the ``yield`` expression (or, for failed events, the
exception is re-raised at the yield point).  A process is itself an
:class:`~repro.simcore.events.Event` that fires when the generator
returns, so processes can be joined (``yield proc``) and composed with
conditions.

Processes support :meth:`Process.interrupt`, which raises
:class:`Interrupt` inside the generator at its current yield point —
the mechanism DUROC-style timeouts and kill operations are built on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import SimulationError, StopProcess
from repro.simcore.events import Event, URGENT

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.environment import Environment

#: Type alias for the generators processes are made from.
ProcessGenerator = Generator[Event, Any, Any]


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    ``cause`` carries an arbitrary application-provided object describing
    why the interrupt happened (e.g. ``"timeout"`` or a failure record).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Initialize(Event):
    """Internal event used to start a process at the current instant."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, priority=URGENT, delay=0.0)


class _InterruptEvent(Event):
    """Internal urgent event delivering an :class:`Interrupt`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process", cause: Any) -> None:
        super().__init__(env)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks.append(process._resume_interrupt)
        env.schedule(self, priority=URGENT, delay=0.0)


class Process(Event):
    """A running simulated activity driven by a generator.

    The process event fires with the generator's return value, or fails
    with the exception that escaped the generator.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None if it is
        #: about to resume or has finished).
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently suspended on."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True until the generator has returned or raised."""
        return self._value is Event.PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process.

        Interrupting a dead process is an error; interrupting a process
        from itself is an error (it could never be delivered).
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        _InterruptEvent(self.env, self, cause)

    # -- resumption machinery ---------------------------------------------

    def _resume_interrupt(self, event: Event) -> None:
        """Deliver an interrupt, unless the process already terminated."""
        if not self.is_alive:
            # The process finished between scheduling and delivery of the
            # interrupt; silently drop it, as there is no yield point left.
            return
        # Detach from whatever the process was waiting on so that the
        # original event no longer resumes it.
        if self._target is not None and not self._target.processed:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the event's outcome."""
        env = self.env
        env._active_process = self
        self._target = None
        # This runs once per yield of every process; hoist the lookups
        # the loop would otherwise re-resolve each iteration.
        generator = self._generator
        schedule = env.schedule
        resume = self._resume

        while True:
            # The generator protocol signals completion by raising
            # StopIteration out of send()/throw(); there is no
            # pre-checkable fast path.  Audited as the one irreducible
            # per-resume try.
            try:  # repro: noqa perf-try-in-loop
                if event is None or event._ok:
                    next_event = generator.send(None if event is None else event._value)
                else:
                    # Mark the failure as handled; the generator may choose
                    # to re-raise, which then fails this process.
                    event.defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                schedule(self, priority=URGENT, delay=0.0)
                break
            except StopProcess as stop:
                generator.close()
                self._ok = True
                self._value = stop.args[0] if stop.args else None
                schedule(self, priority=URGENT, delay=0.0)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                schedule(self, priority=URGENT, delay=0.0)
                break

            error: Optional[str] = None
            if not isinstance(next_event, Event):
                error = f"yielded a non-event: {next_event!r}"
            elif next_event.env is not env:
                error = "yielded an event from another environment"
            if error is not None:
                self._ok = False
                self._value = SimulationError(
                    f"process {self.name!r} {error}"
                )
                schedule(self, priority=URGENT, delay=0.0)
                break

            if next_event.callbacks is not None:
                # Event not yet processed: suspend on it.
                self._target = next_event
                next_event.callbacks.append(resume)
                break

            # Event already processed: loop and feed its value immediately.
            event = next_event

        env._active_process = None

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {state}>"
