"""Structured trace recording with causal linkage.

Components record *spans* (named intervals with attributes) and *marks*
(instantaneous annotated points).  Every span carries a ``trace_id`` /
``span_id`` / ``parent_id`` triple so a DUROC request and everything it
causes — gatekeeper handling, jobmanager phases, application start-up,
barrier check-ins — form one causally-linked tree.  The Fig. 5 timeline
reproduction and the Fig. 3 cost breakdown are both queries over a
trace, and the determinism tests compare traces across runs.

Causality is propagated *explicitly*: simulated processes interleave on
one real thread, so there is no ambient "current span" — a parent
context is passed as a value (and rides on network messages as
``Message.trace_ctx``).  Ids are allocated from per-tracer counters,
never module-level ones, so a run executed in isolation produces the
same ids as the same run executed after another.

By default a tracer *retains* every completed span and mark in memory
— the right thing at paper scale, unbounded at 10⁵–10⁶ events.  The
:class:`SpanSink` seam streams records out instead: a sink observes
every completion and decides whether the tracer keeps the object
(sampling, aggregation, and incremental export live in
:mod:`repro.obs.streaming`).  With a sink attached the tracer also
meters itself — ``obs.spans_{recorded,retained,dropped}`` on its
metrics registry plus an ``on_spans_retained`` probe notification — so
telemetry memory is a gated quantity, not a silent cost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.simcore.environment import Environment

#: Process-parameter key under which a spawned job's trace context is
#: made visible to application code (see ``repro.core.applib``).
OBS_CONTEXT_PARAM = "obs.ctx"


@dataclass(frozen=True, slots=True)
class TraceContext:
    """A position in a trace: which tree, and which node to hang off."""

    trace_id: str
    span_id: int


@dataclass(frozen=True, slots=True)
class Span:
    """A named interval of simulated time with free-form attributes."""

    name: str
    start: float
    end: float
    attrs: dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None
    span_id: Optional[int] = None
    parent_id: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def context(self) -> Optional[TraceContext]:
        """Context for parenting children under this span."""
        if self.trace_id is None or self.span_id is None:
            return None
        return TraceContext(self.trace_id, self.span_id)

    def key(self) -> tuple:
        """Hashable identity used by determinism comparisons."""
        return (
            self.name,
            self.start,
            self.end,
            tuple(sorted(self.attrs.items())),
            self.trace_id,
            self.span_id,
            self.parent_id,
        )


@dataclass(frozen=True, slots=True)
class Mark:
    """An instantaneous annotated event, optionally tied into a trace."""

    name: str
    time: float
    attrs: dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None
    parent_id: Optional[int] = None

    def key(self) -> tuple:
        return (
            self.name,
            self.time,
            tuple(sorted(self.attrs.items())),
            self.trace_id,
            self.parent_id,
        )


Parent = Union[TraceContext, Span, "_OpenSpan", None]


class SpanSink:
    """Observer of span/mark completions on a :class:`Tracer`.

    Every hook is a cheap no-op in the base class; subclasses override
    what they need.  ``on_span``/``on_mark`` return whether the tracer
    should *retain* the record in its in-memory lists — a streaming
    sink returns ``False`` and owns whatever bounded state it needs
    (report :meth:`retained` so the tracer's self-metering stays
    honest).  Sinks must never schedule events or draw random numbers:
    like probes, they are observation-only, and a sinked run's
    simulation is byte-identical to a bare one.
    """

    def on_span_start(
        self,
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
        name: str,
    ) -> None:
        """A span was opened (ids are final; the end time is not known yet)."""

    def on_span(self, span: Span) -> bool:
        """A span completed.  Return ``True`` to retain it on the tracer."""
        return True

    def on_mark(self, mark: Mark) -> bool:
        """A mark was recorded.  Return ``True`` to retain it on the tracer."""
        return True

    def retained(self) -> int:
        """Records currently buffered *inside* the sink (for metering)."""
        return 0

    def close(self) -> None:
        """Flush any buffered state; called once at end of run."""


class _OpenSpan:
    """In-flight span; records itself on ``close()``/``finish()``/exit."""

    __slots__ = (
        "tracer", "name", "attrs", "start",
        "trace_id", "span_id", "parent_id", "_closed",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict[str, Any],
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start = tracer.env.now
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self._closed = False

    @property
    def context(self) -> TraceContext:
        """Context for parenting children under this (still open) span."""
        return TraceContext(self.trace_id, self.span_id)

    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._closed:
            return
        self._closed = True
        self.tracer._emit_span(
            Span(
                self.name,
                self.start,
                self.tracer.env.now,
                dict(self.attrs),
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
            )
        )

    def close(self) -> None:
        self.__exit__(None, None, None)

    def finish(self, **extra_attrs: Any) -> None:
        """Close the span, merging in outcome attributes first."""
        if not self._closed:
            self.attrs.update(extra_attrs)
        self.close()


class Tracer:
    """Collects spans and marks against an environment's clock.

    Also owns the run's :class:`~repro.obs.metrics.MetricsRegistry`
    (created lazily on first access so ``simcore`` has no import-time
    dependency on ``repro.obs``).

    With no ``sink`` every completed record is appended to
    :attr:`spans` / :attr:`marks` exactly as always.  With a
    :class:`SpanSink` attached, completions are routed through the sink
    (which may stream them out instead of retaining them) and the
    tracer meters itself: ``obs.spans_recorded_total`` /
    ``obs.spans_dropped_total`` counters, an ``obs.spans_retained``
    gauge (whose high-water mark bounds telemetry memory), and an
    ``on_spans_retained`` notification to the environment's probe.
    """

    def __init__(self, env: "Environment", sink: Optional[SpanSink] = None) -> None:
        self.env = env
        self.spans: list[Span] = []
        self.marks: list[Mark] = []
        #: Peak number of span/mark records held by the telemetry layer
        #: (tracer lists + sink buffers).  Only metered with a sink.
        self.spans_retained_high_water = 0
        self.sink = sink
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._metrics: Optional["MetricsRegistry"] = None
        self._meter_recorded: Any = None
        self._meter_dropped: Any = None
        self._meter_retained: Any = None
        self._spans_by_name: Optional[dict[str, list[Span]]] = None
        self._spans_indexed = 0
        self._marks_by_name: Optional[dict[str, list[Mark]]] = None
        self._marks_indexed = 0

    @property
    def metrics(self) -> "MetricsRegistry":
        """The run's metrics registry, sharing this tracer's clock."""
        if self._metrics is None:
            from repro.obs.metrics import MetricsRegistry

            self._metrics = MetricsRegistry(self.env)
        return self._metrics

    def _resolve_parent(self, parent: Parent) -> tuple[str, Optional[int]]:
        """Trace id + parent span id for a new span: fresh trace if no parent."""
        if parent is None:
            return f"trace-{next(self._trace_ids)}", None
        if isinstance(parent, (TraceContext, _OpenSpan)):
            return parent.trace_id, parent.span_id
        if isinstance(parent, Span):
            if parent.trace_id is None or parent.span_id is None:
                return f"trace-{next(self._trace_ids)}", None
            return parent.trace_id, parent.span_id
        raise TypeError(f"cannot parent a span on {parent!r}")

    def span(self, name: str, parent: Parent = None, **attrs: Any) -> _OpenSpan:
        """Open a span; close it via ``with``, ``close()`` or ``finish()``.

        With no ``parent`` the span roots a fresh trace.  Note: spans
        opened across a process ``yield`` must be closed explicitly
        (the ``with`` form only works for purely synchronous sections);
        :meth:`record` is often simpler for yield-spanning intervals.
        """
        trace_id, parent_id = self._resolve_parent(parent)
        span_id = next(self._span_ids)
        if self.sink is not None:
            self.sink.on_span_start(trace_id, span_id, parent_id, name)
        return _OpenSpan(self, name, attrs, trace_id, span_id, parent_id)

    def record(
        self,
        name: str,
        start: float,
        end: float,
        parent: Parent = None,
        **attrs: Any,
    ) -> Span:
        """Record a completed span directly."""
        trace_id, parent_id = self._resolve_parent(parent)
        span_id = next(self._span_ids)
        if self.sink is not None:
            self.sink.on_span_start(trace_id, span_id, parent_id, name)
        span = Span(
            name, start, end, attrs,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
        )
        self._emit_span(span)
        return span

    def mark(self, name: str, parent: Parent = None, **attrs: Any) -> Mark:
        """Record an instantaneous mark at the current time."""
        trace_id: Optional[str] = None
        parent_id: Optional[int] = None
        if parent is not None:
            trace_id, parent_id = self._resolve_parent(parent)
        mark = Mark(name, self.env.now, attrs, trace_id=trace_id, parent_id=parent_id)
        sink = self.sink
        if sink is None:
            self.marks.append(mark)
        else:
            retain = sink.on_mark(mark)
            if retain:
                self.marks.append(mark)
            self._meter(dropped=not retain)
        return mark

    # -- emission ----------------------------------------------------------

    def _emit_span(self, span: Span) -> None:
        """Route a completed span through the sink (or just retain it)."""
        sink = self.sink
        if sink is None:
            self.spans.append(span)
            return
        retain = sink.on_span(span)
        if retain:
            self.spans.append(span)
        self._meter(dropped=not retain)

    def _meter(self, dropped: bool = False) -> None:
        """Update the self-metering instruments after one completion."""
        if self._meter_recorded is None:
            metrics = self.metrics
            self._meter_recorded = metrics.counter(
                "obs.spans_recorded_total",
                "span/mark completions seen by the telemetry layer",
            )
            self._meter_dropped = metrics.counter(
                "obs.spans_dropped_total",
                "completions not retained in memory (sampled out or streamed)",
            )
            self._meter_retained = metrics.gauge(
                "obs.spans_retained",
                "records currently held by the telemetry layer "
                "(tracer lists + sink buffers); high_water bounds its memory",
            )
        self._meter_recorded.inc()
        if dropped:
            self._meter_dropped.inc()
        sink = self.sink
        held = len(self.spans) + len(self.marks)
        if sink is not None:
            held += sink.retained()
        self._meter_retained.set(float(held))
        if held > self.spans_retained_high_water:
            self.spans_retained_high_water = held
            probe = getattr(self.env, "probe", None)
            if probe is not None:
                probe.on_spans_retained(held)

    def close(self) -> None:
        """Flush the attached sink, if any (safe to call repeatedly)."""
        if self.sink is not None:
            self.sink.close()

    # -- queries -----------------------------------------------------------

    def _span_index(self) -> dict[str, list[Span]]:
        """Name → spans, built lazily and extended on append-only growth."""
        spans = self.spans
        count = len(spans)
        index = self._spans_by_name
        if index is None or count < self._spans_indexed:
            index = self._spans_by_name = {}
            self._spans_indexed = 0
        if count > self._spans_indexed:
            for span in spans[self._spans_indexed:]:
                bucket = index.get(span.name)
                if bucket is None:
                    bucket = index[span.name] = []
                bucket.append(span)
            self._spans_indexed = count
        return index

    def _mark_index(self) -> dict[str, list[Mark]]:
        marks = self.marks
        count = len(marks)
        index = self._marks_by_name
        if index is None or count < self._marks_indexed:
            index = self._marks_by_name = {}
            self._marks_indexed = 0
        if count > self._marks_indexed:
            for mark in marks[self._marks_indexed:]:
                bucket = index.get(mark.name)
                if bucket is None:
                    bucket = index[mark.name] = []
                bucket.append(mark)
            self._marks_indexed = count
        return index

    def spans_named(self, name: str, **attr_filter: Any) -> list[Span]:
        """All spans with the given name whose attrs include the filter.

        Indexed: repeated queries cost O(matches), not O(total spans).
        """
        matches = self._span_index().get(name, [])
        if not attr_filter:
            return list(matches)
        return [s for s in matches if _match(s.attrs, attr_filter)]

    def marks_named(self, name: str, **attr_filter: Any) -> list[Mark]:
        matches = self._mark_index().get(name, [])
        if not attr_filter:
            return list(matches)
        return [m for m in matches if _match(m.attrs, attr_filter)]

    def total(self, name: str, **attr_filter: Any) -> float:
        """Summed duration of all matching spans."""
        return sum(s.duration for s in self.spans_named(name, **attr_filter))

    def timeline(self) -> Iterator[tuple[float, str, str]]:
        """All span edges and marks in time order, for rendering."""
        entries: list[tuple[float, str, str]] = []
        for s in self.spans:
            entries.append((s.start, "begin", s.name))
            entries.append((s.end, "end", s.name))
        for m in self.marks:
            entries.append((m.time, "mark", m.name))
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        return iter(entries)

    def fingerprint(self) -> tuple:
        """Order-insensitive hashable digest used by determinism tests."""
        return (
            tuple(sorted(s.key() for s in self.spans)),
            tuple(sorted(m.key() for m in self.marks)),
        )


def _match(attrs: dict[str, Any], attr_filter: dict[str, Any]) -> bool:
    return all(attrs.get(k) == v for k, v in attr_filter.items())


class _NullSpan:
    """Shared inert open-span; context is None so children root nowhere."""

    __slots__ = ()

    context: Optional[TraceContext] = None
    name = ""
    start = 0.0
    attrs: dict[str, Any] = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def close(self) -> None:
        pass

    def finish(self, **extra_attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Tracer that drops everything — for hot paths when not measuring.

    API-complete against :class:`Tracer`: context propagation is a
    no-op (spans have no context, so children root nowhere and are
    dropped anyway) and :attr:`metrics` is the shared no-op registry.
    Instrumented code must behave identically under a ``NullTracer``.
    """

    def __init__(self, env: Optional["Environment"] = None) -> None:
        self.env = env if env is not None else _FrozenClock()  # type: ignore[assignment]
        self.spans = _DropList()
        self.marks = _DropList()
        self.spans_retained_high_water = 0
        self.sink = None
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._metrics = None
        self._meter_recorded = None
        self._meter_dropped = None
        self._meter_retained = None
        self._spans_by_name = None
        self._spans_indexed = 0
        self._marks_by_name = None
        self._marks_indexed = 0

    @property
    def metrics(self) -> "MetricsRegistry":
        from repro.obs.metrics import NULL_METRICS

        return NULL_METRICS

    def span(self, name: str, parent: Parent = None, **attrs: Any) -> _OpenSpan:
        return _NULL_SPAN  # type: ignore[return-value]

    def record(
        self,
        name: str,
        start: float,
        end: float,
        parent: Parent = None,
        **attrs: Any,
    ) -> Span:
        return Span(name, start, end, attrs)

    def mark(self, name: str, parent: Parent = None, **attrs: Any) -> Mark:
        return Mark(name, self.env.now, attrs)


class _DropList(list):
    def append(self, item: Any) -> None:  # noqa: D401
        pass


class _FrozenClock:
    now = 0.0


#: Shared tracer for components constructed without one.
NULL_TRACER = NullTracer()
