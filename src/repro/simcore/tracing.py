"""Structured trace recording.

Components record *spans* (named intervals with attributes) and *marks*
(instantaneous annotated points).  The Fig. 5 timeline reproduction and
the Fig. 3 cost breakdown are both queries over a trace, and the
determinism tests compare traces across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.environment import Environment


@dataclass(frozen=True)
class Span:
    """A named interval of simulated time with free-form attributes."""

    name: str
    start: float
    end: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def key(self) -> tuple:
        """Hashable identity used by determinism comparisons."""
        return (self.name, self.start, self.end, tuple(sorted(self.attrs.items())))


@dataclass(frozen=True)
class Mark:
    """An instantaneous annotated event."""

    name: str
    time: float
    attrs: dict[str, Any] = field(default_factory=dict)

    def key(self) -> tuple:
        return (self.name, self.time, tuple(sorted(self.attrs.items())))


class _OpenSpan:
    """Context manager that records a span on exit."""

    __slots__ = ("tracer", "name", "attrs", "start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.start = tracer.env.now

    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.tracer.spans.append(
            Span(self.name, self.start, self.tracer.env.now, dict(self.attrs))
        )

    def close(self) -> None:
        self.__exit__(None, None, None)


class Tracer:
    """Collects spans and marks against an environment's clock."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.spans: list[Span] = []
        self.marks: list[Mark] = []

    def span(self, name: str, **attrs: Any) -> _OpenSpan:
        """Open a span; close it via ``with`` or :meth:`_OpenSpan.close`.

        Note: spans opened across a process ``yield`` must be closed
        explicitly (the ``with`` form only works for purely synchronous
        sections); :meth:`record` is often simpler for yield-spanning
        intervals.
        """
        return _OpenSpan(self, name, attrs)

    def record(self, name: str, start: float, end: float, **attrs: Any) -> Span:
        """Record a completed span directly."""
        span = Span(name, start, end, attrs)
        self.spans.append(span)
        return span

    def mark(self, name: str, **attrs: Any) -> Mark:
        """Record an instantaneous mark at the current time."""
        mark = Mark(name, self.env.now, attrs)
        self.marks.append(mark)
        return mark

    # -- queries -----------------------------------------------------------

    def spans_named(self, name: str, **attr_filter: Any) -> list[Span]:
        """All spans with the given name whose attrs include the filter."""
        return [s for s in self.spans if s.name == name and _match(s.attrs, attr_filter)]

    def marks_named(self, name: str, **attr_filter: Any) -> list[Mark]:
        return [m for m in self.marks if m.name == name and _match(m.attrs, attr_filter)]

    def total(self, name: str, **attr_filter: Any) -> float:
        """Summed duration of all matching spans."""
        return sum(s.duration for s in self.spans_named(name, **attr_filter))

    def timeline(self) -> Iterator[tuple[float, str, str]]:
        """All span edges and marks in time order, for rendering."""
        entries: list[tuple[float, str, str]] = []
        for s in self.spans:
            entries.append((s.start, "begin", s.name))
            entries.append((s.end, "end", s.name))
        for m in self.marks:
            entries.append((m.time, "mark", m.name))
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        return iter(entries)

    def fingerprint(self) -> tuple:
        """Order-insensitive hashable digest used by determinism tests."""
        return (
            tuple(sorted(s.key() for s in self.spans)),
            tuple(sorted(m.key() for m in self.marks)),
        )


def _match(attrs: dict[str, Any], attr_filter: dict[str, Any]) -> bool:
    return all(attrs.get(k) == v for k, v in attr_filter.items())


class NullTracer(Tracer):
    """Tracer that drops everything — for hot paths when not measuring."""

    def __init__(self) -> None:  # noqa: D401 - no env needed
        self.spans = _DropList()
        self.marks = _DropList()
        self.env = _FrozenClock()


class _DropList(list):
    def append(self, item: Any) -> None:  # noqa: D401
        pass


class _FrozenClock:
    now = 0.0
