"""The runtime-verification and profiling probe seam.

A :class:`Probe` is the simulator's instrumentation interface: the
kernel reports scheduled/processed events, the network reports message
sends/deliveries/drops, and protocol components report named events and
state accesses.  The default is *no probe* (``Environment.probe is
None``) and every hook below is a cheap no-op, so instrumented code
behaves identically whether or not a run is being observed — exactly
the contract ``NullTracer`` gives observability.

Concrete probes live higher up: the vector-clock recorder in
:mod:`repro.verify.recorder` and the machine-independent op counters in
:mod:`repro.prof.counters`.  This module only defines the seam so that
low-level packages (``net``, ``core``) never import those layers.
Several observers can share one environment through
:class:`FanoutProbe`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message
    from repro.simcore.environment import Environment


class Probe:
    """Base probe: every hook is a no-op.  Subclass and override."""

    def on_schedule(self, when: float, queue_size: int) -> None:
        """An event was pushed onto the kernel heap (now ``queue_size`` deep)."""

    def on_step(self, now: float) -> None:
        """The kernel processed one event at simulated time ``now``."""

    def on_send(self, message: "Message") -> None:
        """A message entered the network."""

    def on_deliver(self, message: "Message") -> None:
        """A message reached its destination mailbox."""

    def on_drop(self, message: "Message", reason: str) -> None:
        """A message was lost (drop rule, partition, crash, unbound)."""

    def event(self, node: str, name: str, attrs: dict[str, Any]) -> None:
        """A named protocol event occurred at ``node``."""

    def access(
        self, node: str, resource: str, mode: str, attrs: dict[str, Any]
    ) -> None:
        """``node`` read (``mode='r'``) or wrote (``'w'``) ``resource``."""

    def register_locus(self, endpoint: str, locus: str) -> None:
        """Map an endpoint onto its owning locus of control."""

    def on_spans_retained(self, count: int) -> None:
        """The telemetry layer's held-record count reached a new peak.

        Reported by a sinked :class:`~repro.simcore.tracing.Tracer`
        only when ``count`` exceeds every earlier value, so probes can
        store it directly as a high-water mark.
        """

    def on_retained(self, count: int) -> None:
        """A heap census's retained-object count reached a new peak.

        Reported by a :class:`~repro.core.bounded.RetainedCensus` only
        when ``count`` exceeds every earlier census, so probes can
        store it directly as a high-water mark (the ``mem-*`` analogue
        of :meth:`on_spans_retained`, one layer down: live *entries*
        across registered long-lived collections rather than span
        records).
        """


class FanoutProbe(Probe):
    """Dispatches every hook to several probes, in installation order.

    Lets a run be verified *and* profiled at once: the builder composes
    the verification recorder and the op counters into one fan-out when
    both are requested.  Like any probe, fan-out is observation-only.
    """

    def __init__(self, probes: Iterable[Probe]) -> None:
        self.probes: tuple[Probe, ...] = tuple(probes)

    def on_schedule(self, when: float, queue_size: int) -> None:
        for probe in self.probes:
            probe.on_schedule(when, queue_size)

    def on_step(self, now: float) -> None:
        for probe in self.probes:
            probe.on_step(now)

    def on_send(self, message: "Message") -> None:
        for probe in self.probes:
            probe.on_send(message)

    def on_deliver(self, message: "Message") -> None:
        for probe in self.probes:
            probe.on_deliver(message)

    def on_drop(self, message: "Message", reason: str) -> None:
        for probe in self.probes:
            probe.on_drop(message, reason)

    def event(self, node: str, name: str, attrs: dict[str, Any]) -> None:
        for probe in self.probes:
            probe.event(node, name, attrs)

    def access(
        self, node: str, resource: str, mode: str, attrs: dict[str, Any]
    ) -> None:
        for probe in self.probes:
            probe.access(node, resource, mode, attrs)

    def register_locus(self, endpoint: str, locus: str) -> None:
        for probe in self.probes:
            probe.register_locus(endpoint, locus)

    def on_spans_retained(self, count: int) -> None:
        for probe in self.probes:
            probe.on_spans_retained(count)

    def on_retained(self, count: int) -> None:
        for probe in self.probes:
            probe.on_retained(count)


def probe_of(env: "Environment") -> Optional[Probe]:
    """The environment's installed probe, if any."""
    return getattr(env, "probe", None)


def emit(env: "Environment", node: str, name: str, **attrs: Any) -> None:
    """Report a protocol event to the installed probe (no-op without one)."""
    probe = getattr(env, "probe", None)
    if probe is not None:
        probe.event(node, name, attrs)


def record_access(
    env: "Environment", node: str, resource: str, mode: str, **attrs: Any
) -> None:
    """Report a state access to the installed probe (no-op without one)."""
    probe = getattr(env, "probe", None)
    if probe is not None:
        probe.access(node, resource, mode, attrs)


def register_locus(env: "Environment", endpoint: Any, locus: str) -> None:
    """Tie ``endpoint`` to ``locus`` in the installed probe, if any."""
    probe = getattr(env, "probe", None)
    if probe is not None:
        probe.register_locus(str(endpoint), locus)
