"""The runtime-verification probe seam.

A :class:`Probe` is the simulator's instrumentation interface: the
network reports message sends/deliveries/drops, and protocol components
report named events and state accesses.  The default is *no probe*
(``Environment.probe is None``) and every hook below is a cheap no-op,
so instrumented code behaves identically whether or not a run is being
verified — exactly the contract ``NullTracer`` gives observability.

The concrete recorder (which attaches vector clocks and builds the
happens-before log) lives in :mod:`repro.verify.recorder`; this module
only defines the seam so that low-level packages (``net``, ``core``)
never import the verification layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message
    from repro.simcore.environment import Environment


class Probe:
    """Base probe: every hook is a no-op.  Subclass and override."""

    def on_send(self, message: "Message") -> None:
        """A message entered the network."""

    def on_deliver(self, message: "Message") -> None:
        """A message reached its destination mailbox."""

    def on_drop(self, message: "Message", reason: str) -> None:
        """A message was lost (drop rule, partition, crash, unbound)."""

    def event(self, node: str, name: str, attrs: dict[str, Any]) -> None:
        """A named protocol event occurred at ``node``."""

    def access(
        self, node: str, resource: str, mode: str, attrs: dict[str, Any]
    ) -> None:
        """``node`` read (``mode='r'``) or wrote (``'w'``) ``resource``."""

    def register_locus(self, endpoint: str, locus: str) -> None:
        """Map an endpoint onto its owning locus of control."""


def probe_of(env: "Environment") -> Optional[Probe]:
    """The environment's installed probe, if any."""
    return getattr(env, "probe", None)


def emit(env: "Environment", node: str, name: str, **attrs: Any) -> None:
    """Report a protocol event to the installed probe (no-op without one)."""
    probe = getattr(env, "probe", None)
    if probe is not None:
        probe.event(node, name, attrs)


def record_access(
    env: "Environment", node: str, resource: str, mode: str, **attrs: Any
) -> None:
    """Report a state access to the installed probe (no-op without one)."""
    probe = getattr(env, "probe", None)
    if probe is not None:
        probe.access(node, resource, mode, attrs)


def register_locus(env: "Environment", endpoint: Any, locus: str) -> None:
    """Tie ``endpoint`` to ``locus`` in the installed probe, if any."""
    probe = getattr(env, "probe", None)
    if probe is not None:
        probe.register_locus(str(endpoint), locus)
