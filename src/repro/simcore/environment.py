"""The discrete-event execution environment.

:class:`Environment` owns simulated time and the pending-event heap.
``run()`` pops events in (time, priority, sequence) order and invokes
their callbacks; processes resume as callbacks of the events they wait
on.  Time only advances between events — callbacks execute atomically
at one instant, which gives the deterministic interleaving the
co-allocation protocol tests rely on.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Iterable, Optional

from repro.errors import SimulationError
from repro.simcore.events import (
    AllOf,
    AnyOf,
    Event,
    NORMAL,
    Timeout,
)
from repro.simcore.process import Process, ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.probe import Probe

#: Sentinel "infinite" horizon for run().
FOREVER = float("inf")


class EmptySchedule(SimulationError):
    """Internal signal: the event heap is exhausted."""


class _StopSimulation(BaseException):
    """Internal control-flow exception that ends :meth:`Environment.run`."""

    def __init__(self, value: Any) -> None:
        super().__init__(value)
        self.value = value


class Environment:
    """Container for simulated time, the event queue, and factories.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (seconds).
    compact_cancelled:
        Periodically drop cancelled events from the heap instead of
        carrying them until their scheduled time.  Pop order is
        unaffected — entries are totally ordered by their unique
        (time, priority, sequence) key, so re-heapifying the surviving
        multiset reproduces the exact same pop sequence — but the heap
        high-water mark shrinks by orders of magnitude under timer
        churn (schedule a watchdog, cancel it, repeat).  The knob
        exists so benchmarks can measure the pre-compaction kernel.
    """

    #: Queue length below which compaction is never attempted.
    _COMPACT_MIN = 128

    def __init__(
        self, initial_time: float = 0.0, compact_cancelled: bool = True
    ) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self._compact_cancelled = bool(compact_cancelled)
        self._compact_floor = self._COMPACT_MIN
        #: Runtime-verification probe (see :mod:`repro.simcore.probe`);
        #: None means every instrumentation hook is a no-op.
        self.probe: "Optional[Probe]" = None

    # -- time & introspection ---------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled live event (``inf`` if none)."""
        queue = self._queue
        while queue and queue[0][3].cancelled:
            heapq.heappop(queue)
        return queue[0][0] if queue else FOREVER

    @property
    def queue_size(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        return len(self._queue)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Queue ``event`` to be processed after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))
        if self._compact_cancelled and len(self._queue) > self._compact_floor:
            self._compact()
        if self.probe is not None:
            self.probe.on_schedule(self._now + delay, len(self._queue))

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (amortized O(1)/event).

        Every entry carries a unique (time, priority, sequence) key, so
        the heap order is total and heapifying the surviving entries
        yields the identical pop sequence the lazy-deletion heap would
        have produced — byte-identical traces, smaller high-water mark.
        The floor doubles with the live population, so a mostly-live
        queue is never rescanned per schedule.
        """
        live = [entry for entry in self._queue if not entry[3].cancelled]
        if len(live) < len(self._queue):
            heapq.heapify(live)
            self._queue = live
        self._compact_floor = max(self._COMPACT_MIN, 2 * len(live))

    def step(self) -> None:
        """Process the single next event, advancing the clock to it.

        Cancelled events are discarded without advancing the clock, so
        retired timers never prolong a simulation.
        """
        # Hoisted lookups and a pre-checked emptiness test: this loop
        # runs once per simulated event, so it must not pay per-pop
        # exception setup or re-resolve self._queue.  (schedule() is
        # never called mid-pop, so the local alias cannot go stale even
        # though _compact() rebinds self._queue.)
        queue = self._queue
        while True:
            if not queue:
                raise EmptySchedule("event queue is empty")
            when, _, _, event = heapq.heappop(queue)
            if not event.cancelled:
                break
        self._now = when
        if self.probe is not None:
            self.probe.on_step(when)

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # An unhandled failure: surface it to the caller of run().
            exc = event.value
            raise exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until it is processed, returning its
          value (or raising its exception).
        """
        stop: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop = until
            if stop.callbacks is None:
                # Already processed.
                if stop._ok:
                    return stop.value
                raise stop.value
            stop.callbacks.append(self._stop_callback)
        else:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"until={horizon!r} is in the past (now={self._now!r})"
                )
            stop = Event(self)
            stop._ok = True
            stop._value = None
            stop.callbacks.append(self._stop_callback)
            self.schedule(stop, priority=NORMAL + 1, delay=horizon - self._now)

        try:
            step = self.step
            while True:
                step()
        except _StopSimulation as signal:
            return signal.value
        except EmptySchedule:
            if stop is not None and stop.callbacks is not None:
                if isinstance(until, Event):
                    raise SimulationError(
                        "run() ran out of events before the awaited event fired"
                    ) from None
            return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise _StopSimulation(event.value)
        # The awaited event failed: propagate its exception out of run().
        event.defused = True
        raise event.value

    # -- factories ------------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires once any of ``events`` has fired."""
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return f"<Environment now={self._now!r} queued={len(self._queue)}>"
