"""The discrete-event execution environment.

:class:`Environment` owns simulated time; pending events live in a
pluggable :class:`~repro.simcore.equeue.EventQueue` (the compacting
binary heap by default, a calendar queue for million-event runs — see
DESIGN.md §7).  ``run()`` pops events in (time, priority, sequence)
order and invokes their callbacks; processes resume as callbacks of the
events they wait on.  Time only advances between events — callbacks
execute atomically at one instant, which gives the deterministic
interleaving the co-allocation protocol tests rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional, Union

from repro.errors import SimulationError
from repro.simcore.equeue import Entry, EventQueue, make_queue
from repro.simcore.events import (
    AllOf,
    AnyOf,
    Event,
    NORMAL,
    Timeout,
)
from repro.simcore.process import Process, ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.probe import Probe

#: Sentinel "infinite" horizon for run().
FOREVER = float("inf")


class EmptySchedule(SimulationError):
    """Internal signal: the event queue is exhausted."""


class _StopSimulation(BaseException):
    """Internal control-flow exception that ends :meth:`Environment.run`."""

    def __init__(self, value: Any) -> None:
        super().__init__(value)
        self.value = value


class Environment:
    """Container for simulated time, the event queue, and factories.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (seconds).
    compact_cancelled:
        Periodically drop cancelled events from the queue instead of
        carrying them until their scheduled time.  Pop order is
        unaffected — entries are totally ordered by their unique
        (time, priority, sequence) key, so the surviving multiset
        reproduces the exact same pop sequence — but the queue
        high-water mark shrinks by orders of magnitude under timer
        churn (schedule a watchdog, cancel it, repeat).  The knob
        exists so benchmarks can measure the pre-compaction kernel.
    queue:
        Pending-event storage: ``None`` or ``"heap"`` for the reference
        compacting binary heap, ``"calendar"`` for the calendar queue,
        or any :class:`~repro.simcore.equeue.EventQueue` instance.  All
        implementations pop in the same total order, so this is a
        performance choice, never a semantic one.  Queues that declare
        ``batched`` are dispatched one same-(time, priority) run per
        queue interaction instead of one event per pop.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        compact_cancelled: bool = True,
        queue: Union[str, EventQueue, None] = None,
    ) -> None:
        self._now = float(initial_time)
        self._equeue = make_queue(queue, auto_compact=compact_cancelled)
        self._batched = self._equeue.batched
        #: Same-(time, priority) run currently being dispatched (batched
        #: queues only) and the index of its next unserved entry.
        self._batch: list[Entry] = []
        self._batch_idx = 0
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Runtime-verification probe (see :mod:`repro.simcore.probe`);
        #: None means every instrumentation hook is a no-op.
        self.probe: "Optional[Probe]" = None

    # -- time & introspection ---------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def queue(self) -> EventQueue:
        """The pending-event queue implementation in use."""
        return self._equeue

    def peek(self) -> float:
        """Time of the next scheduled live event (``inf`` if none)."""
        batch = self._batch
        idx = self._batch_idx
        nbatch = len(batch)
        while idx < nbatch and batch[idx][3].cancelled:
            idx += 1
        self._batch_idx = idx
        key = self._equeue.peek_key()
        if idx < nbatch:
            when = batch[idx][0]
            if key is not None and key[0] < when:
                return key[0]
            return when
        if key is not None:
            return key[0]
        return FOREVER

    @property
    def queue_size(self) -> int:
        """Raw scheduled entries still resident, **including** cancelled
        events that have not been discarded yet.  This is the number
        that occupies memory — the heap high-water CI gate counts it —
        not the number of events that will still fire; see
        :attr:`live_size` for the latter."""
        return len(self._equeue) + len(self._batch) - self._batch_idx

    @property
    def live_size(self) -> int:
        """Scheduled-but-not-cancelled events (O(queue) scan).

        The observability gauge: cancelled timers awaiting discard are
        excluded.  Computed by scanning the resident entries, so read
        it at sampling granularity, not per event.
        """
        batch = self._batch
        count = self._equeue.live_size
        for index in range(self._batch_idx, len(batch)):
            if not batch[index][3].cancelled:
                count += 1
        return count

    def compact(self) -> None:
        """Physically drop cancelled entries from the queue now."""
        self._equeue.compact()

    # -- scheduling ---------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Queue ``event`` to be processed after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self._eid += 1
        when = self._now + delay
        equeue = self._equeue
        equeue.push(when, priority, self._eid, event)
        if self.probe is not None:
            self.probe.on_schedule(
                when, len(equeue) + len(self._batch) - self._batch_idx
            )

    def _next_batched(self) -> Entry:
        """Next live entry under batched dispatch.

        Serves the current run in sequence order, refilling it one
        :meth:`~repro.simcore.equeue.EventQueue.pop_run` at a time.  An
        entry scheduled *during* the run that sorts before the run's
        remainder (an URGENT resume at the same instant) preempts it —
        checked against the queue's minimum per served entry — so the
        dispatch order is exactly the heap's.
        """
        equeue = self._equeue
        peek_key = equeue.peek_key
        batch = self._batch
        idx = self._batch_idx
        while True:
            nbatch = len(batch)
            while idx < nbatch:
                candidate = batch[idx]
                if candidate[3].cancelled:
                    idx += 1
                    continue
                key = peek_key()
                if key is not None and key < (candidate[0], candidate[1], candidate[2]):
                    preempt = equeue.pop()
                    if preempt is not None:
                        self._batch_idx = idx
                        return preempt
                self._batch_idx = idx + 1
                return candidate
            batch = equeue.pop_run()
            idx = 0
            self._batch = batch
            if not batch:
                self._batch_idx = 0
                raise EmptySchedule("event queue is empty")

    def step(self) -> None:
        """Process the single next event, advancing the clock to it.

        Cancelled events are discarded without advancing the clock, so
        retired timers never prolong a simulation.
        """
        if self._batched:
            entry = self._next_batched()
        else:
            # Unbatched queues keep the exact one-pop cadence of the
            # pre-seam kernel: pop discards cancelled entries itself,
            # so this path pays one call per dispatched event.
            entry = self._equeue.pop()
            if entry is None:
                raise EmptySchedule("event queue is empty")
        when = entry[0]
        event = entry[3]
        self._now = when
        if self.probe is not None:
            self.probe.on_step(when)

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # An unhandled failure: surface it to the caller of run().
            exc = event.value
            if self.probe is not None:
                self.probe.event(
                    "kernel",
                    "process.unhandled",
                    {"error": type(exc).__name__, "message": str(exc)},
                )
            raise exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until it is processed, returning its
          value (or raising its exception).
        """
        stop: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop = until
            if stop.callbacks is None:
                # Already processed.
                if stop._ok:
                    return stop.value
                raise stop.value
            stop.callbacks.append(self._stop_callback)
        else:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"until={horizon!r} is in the past (now={self._now!r})"
                )
            stop = Event(self)
            stop._ok = True
            stop._value = None
            stop.callbacks.append(self._stop_callback)
            self.schedule(stop, priority=NORMAL + 1, delay=horizon - self._now)

        try:
            step = self.step
            while True:
                step()
        except _StopSimulation as signal:
            return signal.value
        except EmptySchedule:
            if stop is not None and stop.callbacks is not None:
                if isinstance(until, Event):
                    raise SimulationError(
                        "run() ran out of events before the awaited event fired"
                    ) from None
            return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise _StopSimulation(event.value)
        # The awaited event failed: propagate its exception out of run().
        event.defused = True
        raise event.value

    # -- factories ------------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires once any of ``events`` has fired."""
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return f"<Environment now={self._now!r} queued={self.queue_size}>"
