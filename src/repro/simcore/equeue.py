"""Pluggable pending-event queues for the discrete-event kernel.

:class:`~repro.simcore.environment.Environment` owns simulated time and
delegates *storage* of scheduled events to an :class:`EventQueue`.  Every
entry is keyed by the unique triple ``(time, priority, sequence)`` the
kernel assigns at scheduling, so the order of live entries is **total**:
any structure that pops entries in ascending key order reproduces the
exact same event sequence — and therefore byte-identical traces — as any
other.  That equivalence is what makes the queue pluggable: the choice
of implementation is a performance decision, never a semantic one (see
DESIGN.md §7 for the proof sketch and selection guidance).

Two implementations ship:

* :class:`HeapQueue` — the reference compacting binary heap (the
  pre-seam kernel, extracted verbatim).  O(log n) per operation,
  unbeatable constant factors at the tens-of-jobs scale of the paper's
  figures, and the default everywhere.
* :class:`CalendarQueue` — a Brown-style calendar queue (bucketed
  timing wheel) with amortized O(1) enqueue/dequeue and *batched* runs:
  :meth:`~CalendarQueue.pop_run` drains every live entry sharing the
  minimal ``(time, priority)`` out of one bucket in a single queue
  interaction, which is what the 10⁵–10⁶-event workloads of the ROADMAP
  north star are dominated by (same-instant process resumptions and
  coalesced message deliveries).

Both queues discard cancelled entries lazily on the way to the minimum
and compact them in bulk under timer churn (amortized via a doubling
floor), so retired watchdogs never dominate the resident population.

Terminology used throughout:

* **raw size** (``len(queue)``) — entries resident in the structure,
  including cancelled ones not yet discarded.  The per-implementation
  ``high_water`` gauge and the CI heap-depth gates count these, because
  raw entries are what occupy memory.
* **live size** (:attr:`EventQueue.live_size`) — scheduled-but-not-
  cancelled entries only; what ``Environment.live_size`` reports to
  observability.  Computed by scan (O(raw)), so read it at gauge
  granularity, not per event.
"""

from __future__ import annotations

from bisect import insort
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Optional, Union

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simcore.events import Event

#: A scheduled entry: ``(time, priority, sequence, event)``.  The first
#: three fields form the unique, totally ordering key; comparisons never
#: reach the (incomparable) event object.
Entry = tuple[float, int, int, "Event"]

#: A bare entry key: ``(time, priority, sequence)``.
EntryKey = tuple[float, int, int]


class EventQueue:
    """The kernel's pending-event storage protocol.

    Implementations keep scheduled entries and serve them back in
    ascending ``(time, priority, sequence)`` order, silently discarding
    entries whose event has been cancelled.  They must be deterministic
    (no wall clock, no RNG), and they never call back into the kernel:
    the :class:`~repro.simcore.environment.Environment` drives them.

    ``batched`` declares whether :meth:`pop_run` is worth calling: the
    environment dispatches unbatched queues one :meth:`pop` at a time
    (zero overhead over the pre-seam kernel) and batched queues one
    same-``(time, priority)`` run per queue interaction.
    """

    __slots__ = ()

    #: Short implementation tag used in per-queue gauge names.
    name = "abstract"

    #: Whether the environment should dispatch via :meth:`pop_run`.
    batched = False

    def push(self, when: float, priority: int, seq: int, event: "Event") -> None:
        """Store one entry.  Keys arrive in nondecreasing ``when`` order
        relative to the last popped entry (the kernel never schedules
        into the past), but implementations should tolerate arbitrary
        keys for standalone use."""
        raise NotImplementedError

    def pop(self) -> Optional[Entry]:
        """Remove and return the minimal live entry (None when empty).

        Cancelled entries encountered on the way are discarded and
        counted, never returned.
        """
        raise NotImplementedError

    def pop_run(self) -> list[Entry]:
        """Remove the maximal run of live entries sharing the minimal
        ``(time, priority)``, in ascending sequence order (``[]`` when
        empty).  The default forwards to :meth:`pop` one entry at a
        time; batched implementations drain the run in one interaction.
        """
        entry = self.pop()
        if entry is None:
            return []
        return [entry]

    def peek_key(self) -> Optional[EntryKey]:
        """The key of the minimal live entry without removing it (None
        when empty).  Discarding cancelled entries on the way is
        allowed and does not count as mutation."""
        raise NotImplementedError

    def compact(self) -> None:
        """Physically drop cancelled entries.  Pop order is unaffected:
        the surviving multiset carries the same total order."""
        raise NotImplementedError

    @property
    def live_size(self) -> int:
        """Entries whose event is not cancelled (O(raw) scan)."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Raw resident entries, including cancelled ones."""
        raise NotImplementedError

    def stats(self) -> dict[str, float]:
        """Deterministic per-implementation gauges.

        Common keys: ``pushes``, ``pops``, ``discards`` (cancelled
        entries dropped), ``compactions``, ``high_water`` (peak raw
        size), ``size`` and ``live_size`` (current).  Batched
        implementations add ``runs``/``run_events``; the calendar queue
        adds ``buckets``, ``width``, ``resizes``, ``direct_searches``.
        """
        raise NotImplementedError


class HeapQueue(EventQueue):
    """The reference implementation: a compacting binary heap.

    Exactly the pre-seam kernel: ``heapq`` push/pop over entry tuples,
    lazy deletion of cancelled entries at the top, and amortized bulk
    compaction behind a doubling floor (see :meth:`compact`).  Unit
    ``pop_run``\\ s — the environment dispatches it one pop at a time,
    so a default-configured simulation is byte-identical to the
    pre-seam kernel, probe callbacks included.
    """

    __slots__ = (
        "_heap", "_auto_compact", "_compact_floor",
        "_pushes", "_pops", "_discards", "_compactions", "_high_water",
    )

    name = "heap"
    batched = False

    #: Queue length below which compaction is never attempted.
    _COMPACT_MIN = 128

    def __init__(self, auto_compact: bool = True) -> None:
        self._heap: list[Entry] = []
        self._auto_compact = bool(auto_compact)
        self._compact_floor = self._COMPACT_MIN
        self._pushes = 0
        self._pops = 0
        self._discards = 0
        self._compactions = 0
        self._high_water = 0

    def push(self, when: float, priority: int, seq: int, event: "Event") -> None:
        heap = self._heap
        heappush(heap, (when, priority, seq, event))
        self._pushes += 1
        if self._auto_compact and len(heap) > self._compact_floor:
            self.compact()
            heap = self._heap
        if len(heap) > self._high_water:
            self._high_water = len(heap)

    def pop(self) -> Optional[Entry]:
        heap = self._heap
        while heap:
            entry = heappop(heap)
            if entry[3].cancelled:
                self._discards += 1
                continue
            self._pops += 1
            return entry
        return None

    def peek_key(self) -> Optional[EntryKey]:
        heap = self._heap
        while heap:
            head = heap[0]
            if head[3].cancelled:
                heappop(heap)
                self._discards += 1
                continue
            return (head[0], head[1], head[2])
        return None

    def compact(self) -> None:
        """Drop cancelled entries and re-heapify (amortized O(1)/event).

        Every entry carries a unique (time, priority, sequence) key, so
        the heap order is total and heapifying the surviving entries
        yields the identical pop sequence the lazy-deletion heap would
        have produced — byte-identical traces, smaller high-water mark.
        The floor doubles with the live population, so a mostly-live
        queue is never rescanned per push.
        """
        heap = self._heap
        live = [entry for entry in heap if not entry[3].cancelled]
        if len(live) < len(heap):
            self._discards += len(heap) - len(live)
            self._compactions += 1
            heapify(live)
            self._heap = live
        self._compact_floor = max(self._COMPACT_MIN, 2 * len(live))

    @property
    def live_size(self) -> int:
        count = 0
        for entry in self._heap:
            if not entry[3].cancelled:
                count += 1
        return count

    def __len__(self) -> int:
        return len(self._heap)

    def stats(self) -> dict[str, float]:
        return {
            "pushes": float(self._pushes),
            "pops": float(self._pops),
            "discards": float(self._discards),
            "compactions": float(self._compactions),
            "high_water": float(self._high_water),
            "size": float(len(self._heap)),
            "live_size": float(self.live_size),
        }

    def __repr__(self) -> str:
        return f"<HeapQueue size={len(self._heap)} high_water={self._high_water}>"


class CalendarQueue(EventQueue):
    """A Brown-style calendar queue (bucketed timing wheel).

    Entries hash into ``nbuckets`` buckets by virtual bucket number
    ``time / width`` (floored, then boundary-clamped so a time is never
    assigned at-or-above its bucket's window top — times must be
    nonnegative, which scheduled kernel events always are); each bucket
    keeps its entries sorted so its minimum sits at the *end* of the
    list (entries are stored under the negated key, ascending, which
    makes the min an O(1) ``list.pop()`` instead of a shift-everything
    ``pop(0)``).  A dequeue scans from the current bucket, taking the
    head entry if it falls inside the bucket's current year; after a
    fruitless full revolution it falls back to a direct search over all
    bucket heads and re-anchors there, which keeps sparse far-future
    schedules (wheel rollover) correct at O(nbuckets) instead of
    O(revolutions).

    The structure resizes itself — bucket count doubles above two
    entries per bucket and halves below one per two — re-estimating the
    bucket width from the smallest resident keys.  All decisions are
    pure functions of the resident entries, so two runs (or a calendar
    run and a heap run) see identical pop sequences.

    ``pop_run`` is where the calendar earns its keep at scale: entries
    sharing ``(time, priority)`` are adjacent at the end of one bucket,
    so a same-instant batch of N process resumptions drains in one
    queue interaction instead of N heap pops.
    """

    __slots__ = (
        "_buckets", "_nbuckets", "_width", "_size",
        "_virtual", "_auto_compact", "_compact_floor",
        "_pushes", "_pops", "_discards", "_compactions", "_high_water",
        "_runs", "_run_events", "_resizes", "_direct_searches",
    )

    name = "calendar"
    batched = True

    #: Bucket-count bounds and the initial width (seconds per bucket).
    _MIN_BUCKETS = 16
    _DEFAULT_WIDTH = 1.0
    #: Raw size below which compaction is never attempted (same policy
    #: as :class:`HeapQueue`, so churn behaviour is comparable).
    _COMPACT_MIN = 128
    #: Sample size for re-estimating the bucket width on resize.
    _WIDTH_SAMPLE = 64

    def __init__(
        self,
        bucket_count: int = _MIN_BUCKETS,
        width: float = _DEFAULT_WIDTH,
        auto_compact: bool = True,
    ) -> None:
        if bucket_count < 1:
            raise SimulationError(f"bucket_count must be >= 1, got {bucket_count!r}")
        if not width > 0.0:
            raise SimulationError(f"width must be positive, got {width!r}")
        self._nbuckets = int(bucket_count)
        self._width = float(width)
        #: Each bucket holds ``(-time, -priority, -seq, event)`` tuples in
        #: ascending order, i.e. the minimal real key at the end.
        self._buckets: list[list[tuple[float, int, int, "Event"]]] = []
        for _ in range(self._nbuckets):
            self._buckets.append([])
        self._size = 0
        #: Scan anchor: the *absolute* virtual bucket number (not the
        #: wrapped index) the next dequeue scan starts from.  Keeping it
        #: absolute lets every year-window top be recomputed as
        #: ``(virtual + 1) * width`` — the exact arithmetic
        #: :func:`_virtual_bucket` clamps against — instead of
        #: accumulating ``top += width`` drift across the scan.
        self._virtual = 0
        self._auto_compact = bool(auto_compact)
        self._compact_floor = self._COMPACT_MIN
        self._pushes = 0
        self._pops = 0
        self._discards = 0
        self._compactions = 0
        self._high_water = 0
        self._runs = 0
        self._run_events = 0
        self._resizes = 0
        self._direct_searches = 0

    # -- enqueue -----------------------------------------------------------

    def push(self, when: float, priority: int, seq: int, event: "Event") -> None:
        width = self._width
        virtual = int(when / width)
        # Float division can floor a boundary time into the previous
        # bucket, where it would sit at (or above) that bucket's
        # year-window top and be invisible to the scan for a whole
        # revolution — a reordering bug.  Clamp with the same
        # multiplication the window check uses so bucketing and
        # scanning always agree.
        while when >= (virtual + 1) * width:
            virtual += 1
        if self._size == 0 or virtual < self._virtual:
            # First entry, or an entry behind the scan anchor (the
            # anchor may have drifted ahead through empty buckets):
            # re-anchor so the scan cannot miss it.
            self._virtual = virtual
        bucket = self._buckets[virtual % self._nbuckets]
        insort(bucket, (-when, -priority, -seq, event))
        self._size += 1
        self._pushes += 1
        if self._auto_compact and self._size > self._compact_floor:
            self.compact()
        if self._size > self._high_water:
            self._high_water = self._size
        if self._size > 2 * self._nbuckets:
            self._resize(2 * self._nbuckets)

    # -- dequeue -----------------------------------------------------------

    def _locate(self) -> Optional[list[tuple[float, int, int, "Event"]]]:
        """Anchor the scan at the bucket holding the minimal live entry.

        Returns that bucket (its minimum at the end) or None when the
        queue is empty.  Cancelled entries at bucket minima are
        discarded along the way.  ``_virtual`` is left pointing at the
        returned bucket, so the following pop — and any same-instant
        run — is O(1).
        """
        buckets = self._buckets
        nbuckets = self._nbuckets
        width = self._width
        virtual = self._virtual
        discards = self._discards
        size = self._size
        scanned = 0
        found = None
        while size > 0 and scanned < nbuckets:
            bucket = buckets[virtual % nbuckets]
            while bucket:
                tail = bucket[-1]
                if tail[3].cancelled:
                    bucket.pop()
                    size -= 1
                    discards += 1
                    continue
                if -tail[0] < (virtual + 1) * width:
                    found = bucket
                break
            if found is not None:
                break
            virtual += 1
            scanned += 1
        self._discards = discards
        self._size = size
        if found is not None:
            self._virtual = virtual
            return found
        if size == 0:
            return None
        return self._direct_search()

    def _direct_search(self) -> Optional[list[tuple[float, int, int, "Event"]]]:
        """Fallback when a full revolution found nothing in-year: find
        the global minimum over all bucket heads and re-anchor there.
        Amortized rare — only sparse schedules far beyond the current
        year (wheel rollover) take this path."""
        self._direct_searches += 1
        buckets = self._buckets
        best = None
        best_bucket = None
        discards = self._discards
        size = self._size
        for bucket in buckets:
            while bucket:
                tail = bucket[-1]
                if tail[3].cancelled:
                    bucket.pop()
                    size -= 1
                    discards += 1
                    continue
                # Stored keys are negated, so the *largest* stored tuple
                # is the smallest real key.
                if best is None or tail > best:
                    best = tail
                    best_bucket = bucket
                break
        self._discards = discards
        self._size = size
        if best is None:
            return None
        width = self._width
        when = -best[0]
        virtual = int(when / width)
        while when >= (virtual + 1) * width:
            virtual += 1
        self._virtual = virtual
        return best_bucket

    def pop(self) -> Optional[Entry]:
        bucket = self._locate()
        if bucket is None:
            return None
        stored = bucket.pop()
        self._size -= 1
        self._pops += 1
        return (-stored[0], -stored[1], -stored[2], stored[3])

    def pop_run(self) -> list[Entry]:
        bucket = self._locate()
        if bucket is None:
            return []
        stored = bucket.pop()
        size = self._size - 1
        pops = self._pops + 1
        discards = self._discards
        run: list[Entry] = [(-stored[0], -stored[1], -stored[2], stored[3])]
        when = stored[0]
        priority = stored[1]
        # Same (time, priority) means same virtual bucket, and the run
        # sits contiguously at the minimal end in sequence order.
        bucket_pop = bucket.pop
        run_append = run.append
        while bucket:
            tail = bucket[-1]
            if tail[0] == when and tail[1] == priority:
                bucket_pop()
                size -= 1
                if tail[3].cancelled:
                    discards += 1
                    continue
                pops += 1
                run_append((-tail[0], -tail[1], -tail[2], tail[3]))
                continue
            break
        self._size = size
        self._pops = pops
        self._discards = discards
        self._runs += 1
        self._run_events += len(run)
        return run

    def peek_key(self) -> Optional[EntryKey]:
        bucket = self._locate()
        if bucket is None:
            return None
        stored = bucket[-1]
        return (-stored[0], -stored[1], -stored[2])

    # -- maintenance -------------------------------------------------------

    def compact(self) -> None:
        """Drop cancelled entries in bulk (amortized O(1)/event).

        Buckets are rebuilt filtering cancelled entries; relative order
        inside each bucket is preserved, so the pop sequence of live
        entries is untouched.  The doubling floor mirrors
        :class:`HeapQueue`.
        """
        buckets = self._buckets
        removed = 0
        for index, bucket in enumerate(buckets):
            dead = 0
            survivors: list[tuple[float, int, int, "Event"]] = []
            survivors_append = survivors.append
            for stored in bucket:
                if stored[3].cancelled:
                    dead += 1
                else:
                    survivors_append(stored)
            if dead:
                buckets[index] = survivors
                removed += dead
        if removed:
            self._compactions += 1
            self._discards += removed
            self._size -= removed
        self._compact_floor = max(self._COMPACT_MIN, 2 * self._size)
        if self._size < self._nbuckets // 2 and self._nbuckets > self._MIN_BUCKETS:
            self._resize(max(self._MIN_BUCKETS, self._nbuckets // 2))

    def _resize(self, nbuckets: int) -> None:
        """Rebuild with ``nbuckets`` buckets and a re-estimated width.

        The width is the average gap between the smallest resident
        keys' distinct timestamps (a deterministic pure function of the
        resident entries), aiming at about one entry per bucket per
        year.  Degenerate samples (all same instant) keep the current
        width.
        """
        entries: list[tuple[float, int, int, "Event"]] = []
        for bucket in self._buckets:
            entries.extend(bucket)
        self._resizes += 1
        self._nbuckets = nbuckets
        # Estimate the new width from the smallest keys.  Stored keys
        # are negated, so the largest stored tuples are the smallest
        # real keys.
        sample = sorted(entries, reverse=True)[: self._WIDTH_SAMPLE]
        gaps = 0.0
        gap_count = 0
        previous: Optional[float] = None
        for stored in sample:
            when = -stored[0]
            if previous is not None and when > previous:
                gaps += when - previous
                gap_count += 1
            previous = when
        if gap_count:
            self._width = max(2.0 * gaps / gap_count, 1e-12)
        width = self._width
        buckets = []
        for _ in range(nbuckets):
            buckets.append([])
        for stored in entries:
            when = -stored[0]
            virtual = int(when / width)
            while when >= (virtual + 1) * width:
                virtual += 1
            insort(buckets[virtual % nbuckets], stored)
        self._buckets = buckets
        if self._size:
            smallest = max(entries)
            when = -smallest[0]
            virtual = int(when / width)
            while when >= (virtual + 1) * width:
                virtual += 1
            self._virtual = virtual
        else:
            self._virtual = 0

    @property
    def live_size(self) -> int:
        count = 0
        for bucket in self._buckets:
            for stored in bucket:
                if not stored[3].cancelled:
                    count += 1
        return count

    def __len__(self) -> int:
        return self._size

    def stats(self) -> dict[str, float]:
        return {
            "pushes": float(self._pushes),
            "pops": float(self._pops),
            "discards": float(self._discards),
            "compactions": float(self._compactions),
            "high_water": float(self._high_water),
            "size": float(self._size),
            "live_size": float(self.live_size),
            "runs": float(self._runs),
            "run_events": float(self._run_events),
            "buckets": float(self._nbuckets),
            "width": float(self._width),
            "resizes": float(self._resizes),
            "direct_searches": float(self._direct_searches),
        }

    def __repr__(self) -> str:
        return (
            f"<CalendarQueue size={self._size} buckets={self._nbuckets} "
            f"width={self._width:g} high_water={self._high_water}>"
        )


#: Named queue constructors accepted by :func:`make_queue` (and through
#: it by ``Environment(queue=...)`` and ``GridBuilder(queue=...)``).
QUEUE_IMPLS = {
    "heap": HeapQueue,
    "calendar": CalendarQueue,
}


def make_queue(
    spec: Union[str, EventQueue, None], auto_compact: bool = True
) -> EventQueue:
    """Resolve a queue spec: None/"heap"/"calendar" or an instance.

    ``auto_compact`` configures named specs only; an instance is taken
    as-is, already configured by its constructor.
    """
    if spec is None:
        return HeapQueue(auto_compact=auto_compact)
    if isinstance(spec, EventQueue):
        return spec
    if isinstance(spec, str):
        factory = QUEUE_IMPLS.get(spec)
        if factory is None:
            raise SimulationError(
                f"unknown event queue {spec!r}; pick from {sorted(QUEUE_IMPLS)}"
            )
        return factory(auto_compact=auto_compact)
    raise SimulationError(f"queue must be a name or an EventQueue, got {spec!r}")
