"""Shared-resource primitives: Resource, Container, Store.

These are the queueing building blocks the local schedulers and network
mailboxes are made of:

* :class:`Resource` — ``capacity`` identical slots with a FIFO wait
  queue (used to model e.g. a gatekeeper that serves one authentication
  at a time).
* :class:`Container` — a homogeneous bulk quantity (used to model the
  free-node pool of a space-shared machine).
* :class:`Store` — a FIFO of distinct Python objects (used as message
  mailboxes and job queues).

All requests are events, so processes simply ``yield store.get()``.
Requests may be canceled before they fire (e.g. on RPC timeout) via
:meth:`BaseRequest.cancel`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Optional

from repro.errors import SimulationError
from repro.simcore.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.environment import Environment


class BaseRequest(Event):
    """An event representing a pending request against a resource."""

    __slots__ = ("resource",)

    def __init__(self, resource: "_BaseResource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    def cancel(self) -> bool:
        """Withdraw the request if it has not yet been granted.

        Returns True if the request was withdrawn, False if it had
        already triggered (in which case the caller owns the result and
        must release/put it back explicitly if unwanted).
        """
        if self.triggered:
            return False
        self.resource._withdraw(self)
        # Fire the event as failed-but-defused so anything composed on it
        # (conditions) resolves rather than leaking.
        self._ok = True
        self._value = None
        self.callbacks = None
        return True


class _BaseResource:
    """Common queue bookkeeping for all resource types."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._waiters: Deque[BaseRequest] = deque()

    def _withdraw(self, request: BaseRequest) -> None:
        try:
            self._waiters.remove(request)
        except ValueError:
            pass

    def _wake(self) -> None:
        """Grant as many queued requests as currently possible (FIFO)."""
        waiters = self._waiters
        while waiters:
            request = waiters[0]
            if not self._try_grant(request):
                break
            waiters.popleft()

    def _try_grant(self, request: BaseRequest) -> bool:  # pragma: no cover
        raise NotImplementedError


class Resource(_BaseResource):
    """``capacity`` identical slots with FIFO queueing."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity!r}")
        super().__init__(env)
        self.capacity = int(capacity)
        self.in_use = 0

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def request(self) -> BaseRequest:
        """Event that fires when a slot is acquired."""
        req = BaseRequest(self)
        self._waiters.append(req)
        self._wake()
        return req

    def release(self) -> None:
        """Return one slot to the pool."""
        if self.in_use <= 0:
            raise SimulationError("release() without a matching request")
        self.in_use -= 1
        self._wake()

    def _try_grant(self, request: BaseRequest) -> bool:
        if self.in_use < self.capacity:
            self.in_use += 1
            request.succeed()
            return True
        return False


class ContainerGet(BaseRequest):
    """Pending ``get`` of a quantity from a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        super().__init__(container)
        self.amount = amount


class Container(_BaseResource):
    """A bulk quantity with blocking ``get`` and immediate ``put``."""

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if init < 0 or init > capacity:
            raise SimulationError(f"init={init!r} outside [0, {capacity!r}]")
        super().__init__(env)
        self.capacity = capacity
        self.level = init

    def get(self, amount: float) -> BaseRequest:
        """Event that fires once ``amount`` units have been withdrawn."""
        if amount < 0:
            raise SimulationError(f"negative amount {amount!r}")
        req = ContainerGet(self, amount)
        self._waiters.append(req)
        self._wake()
        return req

    def put(self, amount: float) -> None:
        """Deposit ``amount`` units (never blocks; overflow is an error)."""
        if amount < 0:
            raise SimulationError(f"negative amount {amount!r}")
        if self.level + amount > self.capacity:
            raise SimulationError("container overflow")
        self.level += amount
        self._wake()

    def _try_grant(self, request: BaseRequest) -> bool:
        assert isinstance(request, ContainerGet)
        amount = request.amount
        if self.level >= amount:
            self.level -= amount
            request.succeed(amount)
            return True
        return False


class StoreGet(BaseRequest):
    """Pending ``get`` against a :class:`Store`, optionally filtered."""

    __slots__ = ("filter",)

    def __init__(self, store: "Store", filter: Optional[Callable[[Any], bool]]) -> None:
        self.filter = filter
        super().__init__(store)


class Store(_BaseResource):
    """FIFO of distinct items with blocking ``get``.

    ``get(filter=...)`` retrieves the first item matching the predicate,
    which lets one mailbox demultiplex several message kinds (the RPC
    layer matches replies by request id this way).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        super().__init__(env)
        self.capacity = capacity
        self.items: Deque[Any] = deque()

    def put(self, item: Any) -> None:
        """Add an item (never blocks; overflow is an error)."""
        if len(self.items) >= self.capacity:
            raise SimulationError("store overflow")
        self.items.append(item)
        self._wake()

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Event that fires with the next (matching) item."""
        req = StoreGet(self, filter)
        self._waiters.append(req)
        self._wake()
        return req

    def _try_grant(self, request: BaseRequest) -> bool:
        assert isinstance(request, StoreGet)
        if request.filter is None:
            if self.items:
                request.succeed(self.items.popleft())
                return True
            return False
        for idx, item in enumerate(self.items):
            if request.filter(item):
                del self.items[idx]
                request.succeed(item)
                return True
        return False

    def _wake(self) -> None:
        # Unlike slot resources, a filtered waiter at the head must not
        # block later waiters whose filters match: scan all waiters.
        waiters = self._waiters
        idx = 0
        while idx < len(waiters):
            request = waiters[idx]
            if self._try_grant(request):
                del waiters[idx]
                # Restart: granting may have consumed items others wanted.
                idx = 0
            else:
                idx += 1

    def __len__(self) -> int:
        return len(self.items)
