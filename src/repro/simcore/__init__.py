"""Discrete-event simulation kernel.

A minimal, deterministic, generator-driven simulator in the SimPy style:

>>> from repro.simcore import Environment
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(3.0)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run(proc)
3.0

``__all__`` below is the kernel's stable public surface: the
environment and event types, the pluggable :class:`EventQueue`
protocol with both shipped implementations (pick one with
``Environment(queue=...)``), the observer seam (:class:`Probe` /
:class:`FanoutProbe`), tracing, resources, and seeded RNG streams.
"""

from repro.simcore.environment import Environment, FOREVER
from repro.simcore.equeue import (
    QUEUE_IMPLS,
    CalendarQueue,
    EventQueue,
    HeapQueue,
    make_queue,
)
from repro.simcore.events import AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from repro.simcore.probe import FanoutProbe, Probe
from repro.simcore.process import Interrupt, Process
from repro.simcore.resources import Container, Resource, Store
from repro.simcore.rng import RngRegistry, jittered
from repro.simcore.tracing import (
    NULL_TRACER,
    OBS_CONTEXT_PARAM,
    Mark,
    NullTracer,
    Span,
    SpanSink,
    TraceContext,
    Tracer,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Condition",
    "ConditionValue",
    "Container",
    "Environment",
    "Event",
    "EventQueue",
    "FOREVER",
    "FanoutProbe",
    "HeapQueue",
    "Interrupt",
    "Mark",
    "NULL_TRACER",
    "NullTracer",
    "OBS_CONTEXT_PARAM",
    "Probe",
    "Process",
    "QUEUE_IMPLS",
    "Resource",
    "RngRegistry",
    "Span",
    "SpanSink",
    "Store",
    "Timeout",
    "TraceContext",
    "Tracer",
    "jittered",
    "make_queue",
]
