"""Discrete-event simulation kernel.

A minimal, deterministic, generator-driven simulator in the SimPy style:

>>> from repro.simcore import Environment
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(3.0)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run(proc)
3.0
"""

from repro.simcore.environment import Environment, FOREVER
from repro.simcore.events import AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from repro.simcore.process import Interrupt, Process
from repro.simcore.resources import Container, Resource, Store
from repro.simcore.rng import RngRegistry, jittered
from repro.simcore.tracing import (
    NULL_TRACER,
    OBS_CONTEXT_PARAM,
    Mark,
    NullTracer,
    Span,
    SpanSink,
    TraceContext,
    Tracer,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "Environment",
    "Event",
    "FOREVER",
    "Interrupt",
    "Mark",
    "NULL_TRACER",
    "NullTracer",
    "OBS_CONTEXT_PARAM",
    "Process",
    "Resource",
    "RngRegistry",
    "Span",
    "SpanSink",
    "Store",
    "Timeout",
    "TraceContext",
    "Tracer",
    "jittered",
]
