"""Deterministic random-number streams for simulations.

Every stochastic component draws from its own named substream derived
from a single root seed, so adding a new random component never perturbs
the draws of existing ones — a requirement for reproducible experiments
and for the repository's determinism tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class RngRegistry:
    """Factory of independent, named ``numpy.random.Generator`` streams.

    Streams are derived with ``SeedSequence.spawn``-style keying: the
    stream named ``"gram.hostA"`` is a function of (root seed, name)
    only.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # Hash the name into entropy words deterministically.
            words = [self.seed] + [ord(c) for c in name]
            gen = np.random.default_rng(np.random.SeedSequence(words))
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:
        return f"<RngRegistry seed={self.seed} streams={sorted(self._streams)}>"


def jittered(
    rng: Optional[np.random.Generator],
    mean: float,
    cv: float = 0.0,
) -> float:
    """A non-negative duration around ``mean``.

    ``cv`` is the coefficient of variation; with ``cv == 0`` or no rng
    the mean itself is returned (fully deterministic).  A gamma
    distribution keeps draws positive with the requested mean/CV.
    """
    if mean < 0:
        raise ValueError(f"negative mean duration {mean!r}")
    if rng is None or cv <= 0.0 or mean == 0.0:
        return mean
    shape = 1.0 / (cv * cv)
    scale = mean / shape
    return float(rng.gamma(shape, scale))
