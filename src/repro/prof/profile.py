"""Trace-derived profiles: cost attribution per span path.

A :class:`Profile` aggregates a run's causal span forest by *path* —
the root-to-span chain of names joined with ``;`` (the collapsed-stack
convention), e.g. ``duroc.request;duroc.submit;gram.submit;gram.auth``.
Each path carries a call count, **inclusive** simulated time (summed
span durations) and **exclusive** self time (inclusive minus the time
covered by child spans; children that overlap — simulated concurrency —
are merged as an interval union first, so exclusive time is never
negative and the attribution stays exact).

Profiles serialize to canonical JSON — sorted keys, fixed float
rounding, trailing newline — so two runs of the same seed produce
byte-identical files, which the CI perf gate compares with ``cmp``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Optional, Sequence, Union

from repro.obs.query import SpanNode, build_forest
from repro.simcore.tracing import Span

if TYPE_CHECKING:  # pragma: no cover
    from repro.gridenv import Grid

#: Profile format identifier, bumped on incompatible schema changes.
FORMAT = "repro.prof/1"

#: Path separator between span names (the collapsed-stack convention).
SEP = ";"

#: Decimal places kept for times in the canonical serialization; 1 ns
#: resolution, far below any modeled cost, so rounding never merges two
#: genuinely different attributions.
ROUND = 9

#: Metrics-registry counters folded into a profile's op-count section,
#: mapped to their profile counter names.  Totals are summed across
#: label sets, so the counts stay machine- and label-layout-independent.
METRIC_COUNTERS: tuple[tuple[str, str], ...] = (
    ("rpc.calls_total", "rpc.round_trips"),
    ("rpc.timeouts_total", "rpc.timeouts"),
    ("net.messages_sent_total", "net.messages_sent"),
    ("net.messages_delivered_total", "net.messages_delivered"),
    ("net.messages_dropped_total", "net.messages_dropped"),
    ("resilience.retries_total", "resilience.retries"),
    ("resilience.exhausted_total", "resilience.exhausted"),
    ("resilience.breaker_trips_total", "resilience.breaker_trips"),
    ("obs.spans_recorded_total", "obs.spans_recorded"),
    ("obs.spans_dropped_total", "obs.spans_dropped"),
)


@dataclass(frozen=True)
class PathStats:
    """Aggregated cost of one span path."""

    path: str
    count: int
    inclusive: float
    exclusive: float

    @property
    def leaf(self) -> str:
        """The span name at the end of the path."""
        return self.path.rsplit(SEP, 1)[-1]

    def record(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "inclusive": self.inclusive,
            "exclusive": self.exclusive,
        }


class Profile:
    """A run's cost attribution: path stats plus op counters.

    ``meta`` is free-form provenance (scenario name, seed, source
    file); it participates in serialization but never in diffing.
    """

    def __init__(
        self,
        paths: Mapping[str, PathStats],
        counters: Optional[Mapping[str, float]] = None,
        meta: Optional[Mapping[str, Any]] = None,
        span_count: int = 0,
        total_time: float = 0.0,
    ) -> None:
        self.paths: dict[str, PathStats] = dict(paths)
        self.counters: dict[str, float] = dict(counters or {})
        self.meta: dict[str, Any] = dict(meta or {})
        self.span_count = span_count
        self.total_time = total_time

    # -- queries -----------------------------------------------------------

    def exclusive(self, path: str) -> float:
        """Exclusive time of one exact path (0.0 if absent)."""
        stats = self.paths.get(path)
        return stats.exclusive if stats is not None else 0.0

    def exclusive_by_name(self, name: str) -> float:
        """Summed exclusive time over every path ending in ``name``.

        This is the Fig. 3 query: ``exclusive_by_name("gram.auth")`` is
        the total authentication self-time wherever it occurred.
        """
        return sum(s.exclusive for s in self.paths.values() if s.leaf == name)

    def count_by_name(self, name: str) -> int:
        return sum(s.count for s in self.paths.values() if s.leaf == name)

    def top_exclusive(self, n: int = 10) -> list[PathStats]:
        """The ``n`` paths with the most self time, descending."""
        ranked = sorted(
            self.paths.values(), key=lambda s: (-s.exclusive, s.path)
        )
        return ranked[:n]

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        return {
            "format": FORMAT,
            "meta": dict(self.meta),
            "span_count": self.span_count,
            "total_time": self.total_time,
            "paths": {path: self.paths[path].record() for path in sorted(self.paths)},
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
        }

    def dumps(self) -> str:
        """Canonical byte form: sorted keys, 2-space indent, newline."""
        return json.dumps(self.to_json(), sort_keys=True, indent=2) + "\n"

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.dumps())
        return path

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Profile":
        fmt = data.get("format")
        if fmt != FORMAT:
            raise ValueError(f"not a {FORMAT} profile (format={fmt!r})")
        paths = {
            path: PathStats(
                path=path,
                count=int(entry["count"]),
                inclusive=float(entry["inclusive"]),
                exclusive=float(entry["exclusive"]),
            )
            for path, entry in data.get("paths", {}).items()
        }
        return cls(
            paths=paths,
            counters={k: float(v) for k, v in data.get("counters", {}).items()},
            meta=dict(data.get("meta", {})),
            span_count=int(data.get("span_count", 0)),
            total_time=float(data.get("total_time", 0.0)),
        )

    @classmethod
    def loads(cls, text: str) -> "Profile":
        return cls.from_json(json.loads(text))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Profile":
        return cls.loads(Path(path).read_text())

    def __repr__(self) -> str:
        return (
            f"<Profile paths={len(self.paths)} spans={self.span_count} "
            f"total={self.total_time:g}s>"
        )


# -- building ----------------------------------------------------------------


def _covered(span: Span, children: Sequence[SpanNode]) -> float:
    """Length of the union of child windows, clipped to ``span``'s own.

    Children of a simulated span may overlap each other (concurrent
    subjobs) or spill past the parent (a retry closing late); clipping
    and merging keeps exclusive time exact and non-negative.
    """
    intervals = sorted(
        (max(child.span.start, span.start), min(child.span.end, span.end))
        for child in children
        if child.span.end > span.start and child.span.start < span.end
    )
    covered = 0.0
    cursor = span.start
    for start, end in intervals:
        start = max(start, cursor)
        if end > start:
            covered += end - start
            cursor = end
    return covered


class _Accumulator:
    __slots__ = ("count", "inclusive", "exclusive")

    def __init__(self) -> None:
        self.count = 0
        self.inclusive = 0.0
        self.exclusive = 0.0


def profile_spans(
    spans: Sequence[Span],
    counters: Optional[Mapping[str, float]] = None,
    meta: Optional[Mapping[str, Any]] = None,
) -> Profile:
    """Aggregate ``spans`` into a :class:`Profile`.

    Spans are first assembled into the causal forest (orphans — spans
    whose parent was not recorded — root their own paths, so a profile
    can always be built from any trace slice).
    """
    acc: dict[str, _Accumulator] = {}

    def visit(node: SpanNode, prefix: str) -> None:
        path = f"{prefix}{SEP}{node.span.name}" if prefix else node.span.name
        slot = acc.get(path)
        if slot is None:
            slot = acc[path] = _Accumulator()
        duration = node.span.duration
        slot.count += 1
        slot.inclusive += duration
        slot.exclusive += max(duration - _covered(node.span, node.children), 0.0)
        for child in node.children:
            visit(child, path)

    for root in build_forest(spans):
        visit(root, "")

    paths = {
        path: PathStats(
            path=path,
            count=slot.count,
            inclusive=round(slot.inclusive, ROUND),
            exclusive=round(slot.exclusive, ROUND),
        )
        for path, slot in acc.items()
    }
    total_time = (
        round(max(s.end for s in spans) - min(s.start for s in spans), ROUND)
        if spans
        else 0.0
    )
    return Profile(
        paths=paths,
        counters=counters,
        meta=meta,
        span_count=len(spans),
        total_time=total_time,
    )


def counters_from_metrics(snapshot: Mapping[str, Any]) -> dict[str, float]:
    """Extract the profile's op counts from a metrics snapshot.

    Only the allowlisted deterministic counters in
    :data:`METRIC_COUNTERS` are folded in; absent metrics are simply
    omitted so profiles from partially instrumented runs stay small.
    """
    metrics = snapshot.get("metrics", {})
    out: dict[str, float] = {}
    for metric_name, counter_name in METRIC_COUNTERS:
        entry = metrics.get(metric_name)
        if entry is None:
            continue
        total = sum(value.get("value", 0.0) for value in entry.get("values", []))
        out[counter_name] = total
    return out


def profile_grid(
    grid: "Grid",
    meta: Optional[Mapping[str, Any]] = None,
) -> Profile:
    """Profile a finished :class:`~repro.gridenv.Grid` run.

    Combines the tracer's spans, the metrics registry's op counters,
    and — when the grid was built ``with_profiling()`` — the kernel op
    counts recorded by its :class:`~repro.prof.counters.OpCounters`.
    """
    counters = counters_from_metrics(grid.tracer.metrics.snapshot())
    if grid.counters is not None:
        counters.update(grid.counters.snapshot())
    return profile_spans(grid.tracer.spans, counters=counters, meta=meta)
