"""``python -m repro.prof`` dispatches to :mod:`repro.prof.cli`."""

import sys

from repro.prof.cli import main

if __name__ == "__main__":
    sys.exit(main())
