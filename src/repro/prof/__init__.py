"""Performance profiling and regression tracking (``repro.prof``).

The paper's entire evaluation is cost attribution — Fig. 3 splits a
GRAM submission into auth/misc/initgroups/fork, Fig. 4 charts DUROC
co-allocation cost against subjob count.  This package turns that kind
of question into a first-class artifact: a run's span tree is
aggregated into a deterministic :class:`~repro.prof.profile.Profile`
(inclusive/exclusive simulated time and call counts per span *path*),
two profiles can be diffed with per-path regression thresholds
(:mod:`repro.prof.diff`), and a seeded benchmark suite
(:mod:`repro.prof.bench`) keeps checked-in baselines under
``benchmarks/baselines/`` that the CI perf gate enforces.

Time is attributed in *simulated* seconds and machine-independent op
counts (:mod:`repro.prof.counters`), never wall-clock, so every number
here is byte-reproducible from the root seed.  See ``python -m
repro.prof --help`` and the "Profiling & regression tracking" section
of ``docs/OBSERVABILITY.md``.

``repro.prof.bench`` is imported lazily (it pulls in the resilience
campaigns); the data-model layers below have no dependencies above
``repro.obs``.
"""

from repro.prof.collapse import collapsed_stacks, write_collapsed
from repro.prof.counters import OpCounters
from repro.prof.diff import DiffEntry, ProfileDiff, diff_profiles
from repro.prof.profile import (
    PathStats,
    Profile,
    counters_from_metrics,
    profile_grid,
    profile_spans,
)

__all__ = [
    "DiffEntry",
    "OpCounters",
    "PathStats",
    "Profile",
    "ProfileDiff",
    "collapsed_stacks",
    "counters_from_metrics",
    "diff_profiles",
    "profile_grid",
    "profile_spans",
    "write_collapsed",
]
