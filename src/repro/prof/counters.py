"""Machine-independent cost counters for the simulator itself.

Wall-clock timings of a discrete-event simulator measure the host, not
the code: the deterministic currency here is *op counts* — kernel
events processed, peak event-heap depth, messages through the network.
:class:`OpCounters` collects them through the
:class:`~repro.simcore.probe.Probe` seam, so attaching it changes
nothing about the run (no scheduled events, no RNG draws — the same
observation-only contract as the verification recorder, and the two
compose through :class:`~repro.simcore.probe.FanoutProbe`).

Protocol-level op counts (RPC round-trips, retry attempts) already
live in the metrics registry;
:func:`repro.prof.profile.counters_from_metrics` folds those into the
same profile section.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.simcore.probe import Probe

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message


class OpCounters(Probe):
    """Counts kernel and network operations; never perturbs the run."""

    def __init__(self) -> None:
        #: Events popped and executed by the kernel.
        self.events_processed = 0
        #: Events pushed onto the heap (includes later-cancelled ones).
        self.events_scheduled = 0
        #: Peak depth of the pending-event heap.
        self.heap_high_water = 0
        #: Messages entering / reaching / lost by the network.
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Peak span/mark records held by a sinked tracer (0 when the
        #: run used retain-all tracing, which does not self-meter).
        self.spans_retained_high_water = 0
        #: Peak entries across census-registered long-lived collections
        #: (0 when the run takes no RetainedCensus observations).
        self.retained_high_water = 0

    # -- probe hooks -------------------------------------------------------

    def on_schedule(self, when: float, queue_size: int) -> None:
        self.events_scheduled += 1
        if queue_size > self.heap_high_water:
            self.heap_high_water = queue_size

    def on_step(self, now: float) -> None:
        self.events_processed += 1

    def on_send(self, message: "Message") -> None:
        self.messages_sent += 1

    def on_deliver(self, message: "Message") -> None:
        self.messages_delivered += 1

    def on_drop(self, message: "Message", reason: str) -> None:
        self.messages_dropped += 1

    def on_spans_retained(self, count: int) -> None:
        if count > self.spans_retained_high_water:
            self.spans_retained_high_water = count

    def on_retained(self, count: int) -> None:
        if count > self.retained_high_water:
            self.retained_high_water = count

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """The counts under their profile counter names.

        ``obs.spans_retained_high_water`` appears only when a sinked
        tracer actually reported (retain-all runs never do), and
        ``mem.retained_high_water`` only when a RetainedCensus did,
        keeping the snapshots of every pre-existing scenario
        byte-stable.
        """
        snap = {
            "sim.events_processed": float(self.events_processed),
            "sim.events_scheduled": float(self.events_scheduled),
            "sim.heap_high_water": float(self.heap_high_water),
            "sim.messages_sent": float(self.messages_sent),
            "sim.messages_delivered": float(self.messages_delivered),
            "sim.messages_dropped": float(self.messages_dropped),
        }
        if self.spans_retained_high_water:
            snap["obs.spans_retained_high_water"] = float(
                self.spans_retained_high_water
            )
        if self.retained_high_water:
            snap["mem.retained_high_water"] = float(self.retained_high_water)
        return snap

    def __repr__(self) -> str:
        return (
            f"<OpCounters events={self.events_processed} "
            f"heap_hw={self.heap_high_water} "
            f"delivered={self.messages_delivered}>"
        )
