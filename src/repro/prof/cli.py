"""Command-line entry point: ``python -m repro.prof``.

Build, compare, and gate cost profiles::

    python -m repro.prof profile results/quickstart_trace.jsonl \\
        --metrics results/quickstart_metrics.json \\
        --out results/quickstart_profile.json \\
        --collapsed results/quickstart_profile.collapsed
    python -m repro.prof diff baseline.json candidate.json --threshold-pct 10
    python -m repro.prof bench                 # gate against baselines
    python -m repro.prof bench --update        # refresh baselines
    python -m repro.prof bench --wallclock     # host-clock micro-bench

Exit status mirrors ``python -m repro.obs``: 0 on success, 1 when a
diff or the bench gate finds a regression (or a baseline is missing),
2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.errors import ReproError
from repro.prof.collapse import write_collapsed
from repro.prof.diff import (
    DEFAULT_ABS,
    DEFAULT_PCT,
    diff_profiles,
    render_diff,
)
from repro.prof.profile import Profile, counters_from_metrics, profile_spans


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.prof",
        description="Trace-derived cost profiles, diffs, and the perf gate.",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    sub = parser.add_subparsers(dest="command", metavar="COMMAND")

    profile = sub.add_parser(
        "profile", help="aggregate a JSONL trace export into a profile"
    )
    profile.add_argument("trace", help="JSONL trace export (repro.obs format)")
    profile.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="metrics JSON export; folds op counters into the profile",
    )
    profile.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the canonical profile JSON to PATH",
    )
    profile.add_argument(
        "--collapsed", default=None, metavar="PATH",
        help="write a collapsed-stack (flamegraph) export to PATH",
    )
    profile.add_argument(
        "--top", type=int, default=15,
        help="paths shown in text output (default: 15)",
    )

    diff = sub.add_parser(
        "diff", help="attribute the delta between two profiles"
    )
    diff.add_argument("base", help="baseline profile JSON")
    diff.add_argument("new", help="candidate profile JSON")
    diff.add_argument(
        "--threshold-pct", type=float, default=DEFAULT_PCT,
        help=f"regression threshold in percent (default: {DEFAULT_PCT:g})",
    )
    diff.add_argument(
        "--threshold-abs", type=float, default=DEFAULT_ABS,
        help="absolute floor in seconds below which growth never "
        f"regresses (default: {DEFAULT_ABS:g})",
    )
    diff.add_argument(
        "--threshold", action="append", default=None, metavar="PATH=PCT",
        help="per-path percentage override (repeatable)",
    )
    diff.add_argument(
        "--all", action="store_true",
        help="show every entry, not just the changed ones",
    )

    bench = sub.add_parser(
        "bench", help="run the seeded benchmark suite against the baselines"
    )
    bench.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    bench.add_argument(
        "--update", action="store_true",
        help="regenerate the baselines instead of gating against them",
    )
    bench.add_argument(
        "--seed", type=int, default=None,
        help="root seed (default: 42)",
    )
    bench.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="restrict to this scenario (repeatable; default: all)",
    )
    bench.add_argument(
        "--baseline-dir", default=None, metavar="DIR",
        help="baseline directory (default: benchmarks/baselines)",
    )
    bench.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="also write each scenario's profile (and collapsed stacks) "
        "under DIR",
    )
    bench.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="write the perf-trajectory snapshot (BENCH_5.json) to PATH",
    )
    bench.add_argument(
        "--threshold-pct", type=float, default=DEFAULT_PCT,
        help=f"regression threshold in percent (default: {DEFAULT_PCT:g})",
    )
    bench.add_argument(
        "--wallclock", action="store_true",
        help="also run the host-clock micro-benchmarks (informational; "
        "machine-dependent, never gated)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.error("a command is required (see --help)")
    if args.command == "profile":
        return _cmd_profile(parser, args)
    if args.command == "diff":
        return _cmd_diff(parser, args)
    return _cmd_bench(parser, args)


# -- profile -----------------------------------------------------------------


def _cmd_profile(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    from repro.obs.export import load_jsonl

    trace_path = Path(args.trace)
    if not trace_path.is_file():
        parser.error(f"no such file: {trace_path}")
    try:
        dump = load_jsonl(trace_path)
    except (ValueError, KeyError) as exc:
        parser.error(f"cannot parse {trace_path}: {exc}")

    counters: dict[str, float] = {}
    if args.metrics is not None:
        metrics_path = Path(args.metrics)
        if not metrics_path.is_file():
            parser.error(f"no such file: {metrics_path}")
        try:
            snapshot = json.loads(metrics_path.read_text())
        except json.JSONDecodeError as exc:
            parser.error(f"cannot parse {metrics_path}: {exc}")
        counters = counters_from_metrics(snapshot)

    profile = profile_spans(
        dump.spans,
        counters=counters,
        meta={"source": str(trace_path)},
    )
    if args.out is not None:
        profile.write(args.out)
    if args.collapsed is not None:
        write_collapsed(profile, args.collapsed)

    if args.format == "json":
        sys.stdout.write(profile.dumps())
    else:
        print(render_profile(profile, top=args.top))
    return 0 if profile.paths else 1


def render_profile(profile: Profile, top: int = 15) -> str:
    """Fixed-width top-paths table plus the op-counter section."""
    if not profile.paths:
        return "(no spans)"
    rows = profile.top_exclusive(top)
    path_width = max(4, max(len(s.path) for s in rows))
    header = (
        f"{'path':<{path_width}} {'count':>6} {'inclusive':>12} {'exclusive':>12}"
    )
    lines = [
        f"profile: {profile.span_count} span(s), {len(profile.paths)} path(s), "
        f"makespan {profile.total_time:.6g}s",
        header,
        "-" * len(header),
    ]
    for stats in rows:
        lines.append(
            f"{stats.path:<{path_width}} {stats.count:>6} "
            f"{stats.inclusive:>12.6g} {stats.exclusive:>12.6g}"
        )
    if profile.counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(profile.counters):
            lines.append(f"  {name} = {profile.counters[name]:g}")
    return "\n".join(lines)


# -- diff --------------------------------------------------------------------


def _parse_overrides(
    parser: argparse.ArgumentParser, specs: Optional[Sequence[str]]
) -> dict[str, float]:
    overrides: dict[str, float] = {}
    for spec in specs or ():
        path, sep, pct = spec.rpartition("=")
        if not sep or not path:
            parser.error(f"--threshold expects PATH=PCT, got {spec!r}")
        try:
            overrides[path] = float(pct)
        except ValueError:
            parser.error(f"--threshold {spec!r}: {pct!r} is not a number")
    return overrides


def _load_profile(parser: argparse.ArgumentParser, path: str) -> Profile:
    if not Path(path).is_file():
        parser.error(f"no such file: {path}")
    try:
        return Profile.load(path)
    except (ValueError, KeyError) as exc:
        parser.error(f"cannot parse {path}: {exc}")
    raise AssertionError("unreachable")  # parser.error raises


def _cmd_diff(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    base = _load_profile(parser, args.base)
    new = _load_profile(parser, args.new)
    diff = diff_profiles(
        base,
        new,
        threshold_pct=args.threshold_pct,
        threshold_abs=args.threshold_abs,
        per_path=_parse_overrides(parser, args.threshold),
    )
    if args.format == "json":
        sys.stdout.write(diff.dumps())
    else:
        print(render_diff(diff, all_entries=args.all))
    return 1 if diff.regressions else 0


# -- bench -------------------------------------------------------------------


def _cmd_bench(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    from repro.prof import bench as bench_mod

    if args.list:
        width = max(len(name) for name in bench_mod.SCENARIOS)
        for name in sorted(bench_mod.SCENARIOS):
            print(f"{name:<{width}}  {bench_mod.SCENARIOS[name].description}")
        return 0

    seed = bench_mod.DEFAULT_SEED if args.seed is None else args.seed
    baseline_dir = Path(
        args.baseline_dir if args.baseline_dir is not None
        else bench_mod.BASELINE_DIR
    )

    if args.wallclock:
        micro = bench_mod.run_microbench()
        print("wall-clock micro-benchmarks (machine-dependent, not gated):")
        for name in sorted(micro):
            entry = micro[name]
            print(
                f"  {name}: {entry['ops']:.0f} ops in {entry['seconds']:.4f}s "
                f"({entry['ops_per_sec']:,.0f} ops/s)"
            )

    try:
        if args.update:
            written = bench_mod.update_baselines(
                seed=seed, names=args.scenario, baseline_dir=baseline_dir
            )
            for path in written:
                print(f"baseline written to {path}")
            return 0
        results = bench_mod.run_bench(
            seed=seed,
            names=args.scenario,
            baseline_dir=baseline_dir,
            threshold_pct=args.threshold_pct,
        )
    except ReproError as exc:
        parser.error(str(exc))

    status = 0
    report: dict[str, Any] = {}
    for result in results:
        name = result.scenario.name
        if args.out_dir is not None:
            result.profile.write(Path(args.out_dir) / f"{name}.json")
            write_collapsed(result.profile, Path(args.out_dir) / f"{name}.collapsed")
        if result.missing_baseline:
            status = 1
            verdict = "no baseline (run bench --update)"
        elif result.regressed:
            status = 1
            count = len(result.diff.regressions) if result.diff else 0
            verdict = f"REGRESSED ({count} path(s))"
        else:
            verdict = "ok"
        report[name] = verdict
        if args.format == "text":
            print(f"{name}: {verdict}")
            if result.regressed and result.diff is not None:
                for entry in result.diff.regressions:
                    print(f"  {_regression_line(entry)}")
    if args.format == "json":
        print(json.dumps(report, sort_keys=True))

    if args.snapshot is not None:
        path = bench_mod.write_snapshot(results, seed, Path(args.snapshot))
        if args.format == "text":
            print(f"snapshot written to {path}")
    return status


def _regression_line(entry: Any) -> str:
    pct = f"{entry.pct:+.1f}%" if entry.pct is not None else "new"
    return (
        f"{entry.path} [{entry.kind}] {entry.base:.6g} -> {entry.new:.6g} ({pct})"
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
