"""Collapsed-stack (flamegraph) export.

One line per span path — ``name;name;name value`` — the format consumed
by ``flamegraph.pl``, speedscope, and every inferno-style renderer.
Values are **exclusive** simulated time in integer microseconds (the
tools expect integer sample counts; 1 µs resolution loses nothing at
the simulator's modeled costs).  Lines are sorted, so the export is
byte-identical across runs of the same seed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.prof.profile import Profile

#: Simulated seconds → integer value units (microseconds).
SCALE = 1_000_000


def collapsed_stacks(profile: Profile) -> str:
    """The profile as collapsed-stack text (trailing newline included).

    Zero-weight interior paths are kept: they cost nothing but preserve
    the full call structure for tools that reconstruct the hierarchy
    from the lines alone.
    """
    lines = [
        f"{path} {int(round(profile.paths[path].exclusive * SCALE))}"
        for path in sorted(profile.paths)
    ]
    return "\n".join(lines) + "\n" if lines else ""


def write_collapsed(profile: Profile, path: Union[str, Path]) -> Path:
    """Write the collapsed-stack export; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(collapsed_stacks(profile))
    return path


def parse_collapsed(text: str) -> dict[str, int]:
    """Parse collapsed-stack text back into {path: value} (for tests)."""
    out: dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        path, _, value = line.rpartition(" ")
        if not path:
            raise ValueError(f"line {lineno}: no value field in {line!r}")
        out[path] = int(value)
    return out
