"""The seeded benchmark suite behind the CI perf gate.

Each scenario below runs a deterministic simulated workload with
tracing and op counters attached and reduces it to a
:class:`~repro.prof.profile.Profile`.  The checked-in baselines under
``benchmarks/baselines/`` are regenerated with ``python -m repro.prof
bench --update``; a plain ``bench`` run re-profiles every scenario,
diffs against its baseline, and fails on regression — that, run twice
and ``cmp``-ed, is the CI ``perf`` job.

The suite also emits the repo's perf-trajectory snapshot
(``BENCH_5.json``): a compact, deterministic digest of every scenario
(makespan, span counts, op counts, top self-time paths) that future
revisions can be compared against.

Simulated numbers only — the one exception is the optional
``--wallclock`` micro-bench mode, which times the simulator's own hot
paths (event heap, network delivery) on the host clock.  Those numbers
are machine-dependent by design and never checked against baselines.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.errors import ReproError
from repro.gram.states import JobState
from repro.gridenv import DEFAULT_EXECUTABLE, Grid, GridBuilder
from repro.prof.diff import ProfileDiff, diff_profiles
from repro.prof.profile import Profile, profile_grid, profile_spans
from repro.simcore.probe import Probe

#: Default root seed for the suite (matches the chaos harness).
DEFAULT_SEED = 42

#: Where the checked-in baselines live, relative to the repo root.
BASELINE_DIR = Path("benchmarks") / "baselines"

#: The perf-trajectory snapshot emitted by this PR's suite.
SNAPSHOT_FORMAT = "repro.prof.bench/1"

#: Counters surfaced in the snapshot digest (absent ones are skipped).
SNAPSHOT_COUNTERS = (
    "sim.events_processed",
    "sim.heap_high_water",
    "net.messages_delivered",
    "rpc.round_trips",
    "resilience.retries",
    "obs.spans_recorded",
    "obs.spans_retained_high_water",
    "net.delivery_slots",
    "queue.calendar.high_water",
    "ref.sim.heap_high_water",
    "mem.retained_high_water",
    "ref.mem.retained_high_water",
    "obs.flightrec_retained",
)


@dataclass(frozen=True)
class Scenario:
    """One named, seeded workload producing a profile."""

    name: str
    description: str
    build: Callable[[int], Profile]

    def run(self, seed: int) -> Profile:
        return self.build(seed)


def _meta(name: str, seed: int) -> dict[str, Any]:
    return {"source": "repro.prof.bench", "scenario": name, "seed": seed}


def _profiled_builder(seed: int) -> GridBuilder:
    return GridBuilder(seed=seed).with_profiling()


def _run_fig3_gram(seed: int) -> Profile:
    """Fig. 3 shape: one single-process GRAM submission, to ACTIVE."""
    grid = _profiled_builder(seed).add_machine("origin", nodes=64).build()
    client = grid.gram_client()
    contact = grid.site("origin").contact
    rsl = (
        f"&(resourceManagerContact={contact})"
        f"(count=1)(executable={DEFAULT_EXECUTABLE})"
    )

    def scenario(env):
        handle = yield from client.submit(contact, rsl)
        yield from client.wait_for_state(handle, JobState.ACTIVE, poll=0.005)

    grid.run(grid.process(scenario(grid.env)))
    return profile_grid(grid, meta=_meta("fig3_gram", seed))


def _coallocate(grid: Grid, request) -> None:
    duroc = grid.duroc()

    def agent(env):
        job = duroc.submit(request)
        yield from job.commit()
        yield from job.wait_done()

    grid.run(grid.process(agent(grid.env)))


def _figure1_request(grid: Grid):
    from repro.core.request import CoAllocationRequest, SubjobSpec, SubjobType

    def spec(site: str, count: int, start_type: SubjobType) -> SubjobSpec:
        return SubjobSpec(
            contact=grid.site(site).contact,
            count=count,
            executable=DEFAULT_EXECUTABLE,
            start_type=start_type,
        )

    return CoAllocationRequest([
        spec("RM1", 1, SubjobType.REQUIRED),
        spec("RM2", 4, SubjobType.INTERACTIVE),
        spec("RM3", 4, SubjobType.INTERACTIVE),
    ])


def _run_figure1(seed: int) -> Profile:
    """The quickstart shape: a three-subjob DUROC co-allocation."""
    grid = (
        _profiled_builder(seed)
        .add_machine("RM1", nodes=16)
        .add_machine("RM2", nodes=64)
        .add_machine("RM3", nodes=64)
        .build()
    )
    _coallocate(grid, _figure1_request(grid))
    return profile_grid(grid, meta=_meta("figure1", seed))


def _run_duroc_scaling(seed: int) -> Profile:
    """Fig. 4 shape: co-allocation across six sites (cost vs. fan-out)."""
    from repro.core.request import CoAllocationRequest, SubjobSpec, SubjobType

    builder = _profiled_builder(seed)
    sites = [f"RM{i}" for i in range(1, 7)]
    for site in sites:
        builder.add_machine(site, nodes=16)
    grid = builder.build()
    request = CoAllocationRequest([
        SubjobSpec(
            contact=grid.site(site).contact,
            count=2,
            executable=DEFAULT_EXECUTABLE,
            start_type=SubjobType.REQUIRED,
        )
        for site in sites
    ])
    _coallocate(grid, request)
    return profile_grid(grid, meta=_meta("duroc_scaling", seed))


def _run_campaign_baseline(seed: int) -> Profile:
    """The chaos harness's clean Figure-1 trial, profiled."""
    from repro.resilience.campaign import CAMPAIGNS, profile_trial

    profile = profile_trial(CAMPAIGNS["baseline"], seed)
    profile.meta.update(_meta("campaign_baseline", seed))
    return profile


#: kernel_stress workload shape (~5 × 10⁴ events): enough churn for the
#: heap high-water mark to separate the lazy-deletion kernel from the
#: compacting one, small enough to run in seconds under CI.
_STRESS_WORKERS = 150
_STRESS_ROUNDS = 60
_STRESS_CLIENTS = 40
_STRESS_TRIPS = 100


def _kernel_stress_run(
    seed: int,
    compact_cancelled: bool = True,
    sink=None,
    trace_spans: bool = False,
    probes: Sequence = (),
    queue=None,
):
    """Run the raw-kernel stress workload; returns ``(tracer, counters)``.

    Two concurrent phases exercise the event kernel directly, below the
    protocol layers:

    * **timer churn** — workers repeatedly arm a long watchdog timeout,
      finish their (short) work, and retire the watchdog: the classic
      pattern that floods a lazy-deletion heap with cancelled entries;
    * **message storm** — clients ping an echo server through the
      simulated network, one round trip at a time.

    The workload draws no random numbers, so it is deterministic by
    construction; ``seed`` only stamps the profile metadata.  The
    ``compact_cancelled`` knob exists so benchmarks can measure the
    pre-compaction kernel against the same workload.

    ``trace_spans`` opts into per-operation telemetry — one tenant-
    labelled root span per storm client with a child span per round
    trip, one job-labelled root per churn worker with a child per
    round (~1.3 × 10⁴ spans) — the workload behind ``telemetry_stress``
    and the streaming-sink gate.  ``sink`` is handed to the tracer
    (see :class:`~repro.simcore.tracing.SpanSink`); extra ``probes``
    are fanned out with the op counters.  ``queue`` selects the kernel
    event-queue implementation (see
    :class:`~repro.simcore.equeue.EventQueue`) so tests can replay the
    workload under every queue and compare traces.
    """
    from repro.net.address import Endpoint
    from repro.net.message import Message
    from repro.net.network import Network
    from repro.prof.counters import OpCounters
    from repro.simcore.environment import Environment
    from repro.simcore.probe import FanoutProbe
    from repro.simcore.tracing import Tracer

    env = Environment(compact_cancelled=compact_cancelled, queue=queue)
    counters = OpCounters()
    for probe in probes:
        # Env-aware probes (e.g. a FlightRecorder) need the clock.
        bind = getattr(probe, "bind", None)
        if bind is not None:
            bind(env)
    if probes:
        env.probe = FanoutProbe([counters, *probes])
    else:
        env.probe = counters
    tracer = Tracer(env, sink=sink)
    phase_end = {"churn": 0.0, "storm": 0.0}

    def churn_worker(env, worker):
        span = (
            tracer.span("churn.worker", job=f"job-{worker % 10}")
            if trace_spans
            else None
        )
        for _ in range(_STRESS_ROUNDS):
            round_start = env.now
            watchdog = env.timeout(1_000.0)
            yield env.timeout(0.01)
            # The work finished in time: retire the watchdog.
            watchdog.cancelled = True
            if span is not None:
                tracer.record(
                    "churn.round", round_start, env.now, parent=span,
                    job=f"job-{worker % 10}",
                )
        phase_end["churn"] = max(phase_end["churn"], env.now)
        if span is not None:
            span.close()

    network = Network(env)
    network.add_host("stress")
    echo_endpoint = Endpoint("stress", "echo")
    echo_box = network.bind(echo_endpoint)

    def echo_server(env):
        while True:
            message = yield echo_box.get()
            network.send(Message(
                src=echo_endpoint, dst=message.reply_to,
                kind="pong", payload=message.payload,
            ))

    def client(env, endpoint, box, idx):
        tenant = f"tenant-{idx % 8}"
        span = (
            tracer.span("storm.client", tenant=tenant, client=idx)
            if trace_spans
            else None
        )
        for i in range(_STRESS_TRIPS):
            trip_start = env.now
            network.send(Message(
                src=endpoint, dst=echo_endpoint,
                kind="ping", payload=i, reply_to=endpoint,
            ))
            yield box.get()
            if span is not None:
                tracer.record(
                    "storm.trip", trip_start, env.now, parent=span,
                    tenant=tenant,
                )
        phase_end["storm"] = max(phase_end["storm"], env.now)
        if span is not None:
            span.close()

    for worker in range(_STRESS_WORKERS):
        env.process(churn_worker(env, worker), name=f"churn-{worker}")
    env.process(echo_server(env), name="echo")
    for idx in range(_STRESS_CLIENTS):
        endpoint = Endpoint("stress", f"client-{idx}")
        env.process(
            client(env, endpoint, network.bind(endpoint), idx),
            name=f"client-{idx}",
        )

    env.run()

    root = tracer.record("kernel_stress", 0.0, env.now)
    tracer.record("timer_churn", 0.0, phase_end["churn"], parent=root)
    tracer.record("message_storm", 0.0, phase_end["storm"], parent=root)
    return tracer, counters


def _run_kernel_stress(seed: int) -> Profile:
    """ROADMAP item 1's yardstick: the raw kernel at ~5·10⁴ events."""
    tracer, counters = _kernel_stress_run(seed)
    return profile_spans(
        tracer.spans,
        counters=counters.snapshot(),
        meta=_meta("kernel_stress", seed),
    )


def _run_telemetry_stress(seed: int) -> Profile:
    """The kernel stress workload under full span telemetry.

    Every round trip and churn round records a span through the
    streaming pipeline (aggregation plus self-metering, retain-all so
    the profile still sees every span); the bounded-memory variant of
    the same run is asserted by ``benchmarks/streaming_gate.py``.
    """
    from repro.obs.streaming import AggregatingSink, TelemetryPipeline
    from repro.prof.profile import counters_from_metrics

    sink = TelemetryPipeline(aggregator=AggregatingSink(), retain=True)
    tracer, counters = _kernel_stress_run(seed, sink=sink, trace_spans=True)
    tracer.close()
    merged = counters_from_metrics(tracer.metrics.snapshot())
    merged.update(counters.snapshot())
    return profile_spans(
        tracer.spans,
        counters=merged,
        meta=_meta("telemetry_stress", seed),
    )


#: kernel_scale workload shape (~2 × 10⁵ events in each configuration):
#: synchronized client bursts at one ingest service over a slow WAN
#: link — with latency five wave periods deep, the reference kernel
#: holds ``5 × clients`` per-message delivery events in flight while
#: slotted delivery holds five slots — plus timer churn with
#: far-future watchdogs (compaction under both queues) and
#: far-beyond-horizon sentinels (calendar wheel rollover).
_SCALE_CLIENTS = 400
_SCALE_WAVES = 200
_SCALE_PERIOD = 1.0
_SCALE_LATENCY = 5.0
_SCALE_CHURN_WORKERS = 100
_SCALE_CHURN_ROUNDS = 100
_SCALE_WATCHDOG = 50_000.0
_SCALE_SENTINEL_BASE = 1_000_000.0


class _TraceSignature(Probe):
    """Order-sensitive digest of the simulation-visible event trace.

    Hashes every processed-event timestamp and every network
    send/deliver/drop in order, so two runs have equal digests exactly
    when their kernels dispatched the same events at the same times and
    the network moved the same messages in the same order — the
    byte-identity the pluggable-queue contract promises, checked in
    O(1) memory at 10⁵-event scale.
    """

    def __init__(self) -> None:
        import hashlib

        self._digest = hashlib.sha256()

    def on_step(self, now: float) -> None:
        self._digest.update(struct.pack("<d", now))

    def on_send(self, message) -> None:
        self._digest.update(
            f"s|{message.src}|{message.dst}|{message.kind}|{message.payload!r}".encode()
        )

    def on_deliver(self, message) -> None:
        self._digest.update(
            f"d|{message.src}|{message.dst}|{message.kind}|{message.payload!r}".encode()
        )

    def on_drop(self, message, reason: str) -> None:
        self._digest.update(f"x|{reason}|{message.src}|{message.dst}".encode())

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


def _kernel_scale_run(seed: int, queue=None, slotted: bool = False, probes: Sequence = ()):
    """Run one kernel_scale configuration; returns (env, network, counters, phase_end).

    Three concurrent phases, all deterministic (no RNG; ``seed`` only
    stamps metadata):

    * **burst storm** — ``_SCALE_CLIENTS`` clients fire a report at one
      ingest service at exactly the same instant every
      ``_SCALE_PERIOD`` seconds, for ``_SCALE_WAVES`` waves, across a
      WAN link ``_SCALE_LATENCY / _SCALE_PERIOD`` wave periods deep.
      The same-deadline fan-in is where slotted delivery collapses N
      in-flight delivery events into one slot per wave, and the
      same-instant ingest resumptions are where same-timestamp runs
      dominate dispatch.
    * **timer churn** — workers repeatedly arm a far-future watchdog
      and retire it after a short round, flooding the queue with
      cancelled entries that compaction must reclaim.
    * **sentinels** — a handful of events scheduled ~10⁴ bucket-years
      past the workload horizon; most are retired, the last two fire
      into a near-empty queue, forcing the calendar queue through its
      sparse-rollover direct search.
    """
    from repro.net.address import Endpoint
    from repro.net.message import Message
    from repro.net.network import LatencyModel, Network
    from repro.prof.counters import OpCounters
    from repro.simcore.environment import Environment
    from repro.simcore.probe import FanoutProbe

    env = Environment(queue=queue)
    counters = OpCounters()
    if probes:
        env.probe = FanoutProbe([counters, *probes])
    else:
        env.probe = counters
    network = Network(
        env, LatencyModel(base=_SCALE_LATENCY), slotted=slotted
    )
    network.add_host("edge")
    network.add_host("core")
    ingest_endpoint = Endpoint("core", "ingest").intern()
    ingest_box = network.bind(ingest_endpoint)
    phase_end = {"storm": 0.0, "churn": 0.0, "sentinel": 0.0}

    def ingest_server(env):
        while True:
            yield ingest_box.get()
            phase_end["storm"] = env.now

    def burst_client(env, endpoint, idx):
        for wave in range(_SCALE_WAVES):
            # Every client fires at exactly wave * period: maximal
            # same-deadline coalescing into one delivery slot.
            yield env.timeout(wave * _SCALE_PERIOD - env.now)
            network.send(Message(
                src=endpoint, dst=ingest_endpoint,
                kind="report", payload=(idx, wave),
            ))

    def churn_worker(env, worker):
        for _ in range(_SCALE_CHURN_ROUNDS):
            watchdog = env.timeout(_SCALE_WATCHDOG)
            yield env.timeout(0.25 + 0.001 * (worker % 16))
            # The round finished in time: retire the watchdog.
            watchdog.cancelled = True
        phase_end["churn"] = max(phase_end["churn"], env.now)

    def sentinel(env):
        pending = [
            env.timeout(_SCALE_SENTINEL_BASE + 1_000.0 * i) for i in range(6)
        ]
        yield env.timeout(1.0)
        for retired in pending[:4]:
            retired.cancelled = True
        yield pending[4]
        yield pending[5]
        phase_end["sentinel"] = env.now

    env.process(ingest_server(env), name="ingest")
    for idx in range(_SCALE_CLIENTS):
        endpoint = Endpoint("edge", f"client-{idx}")
        env.process(burst_client(env, endpoint, idx), name=f"client-{idx}")
    for worker in range(_SCALE_CHURN_WORKERS):
        env.process(churn_worker(env, worker), name=f"churn-{worker}")
    env.process(sentinel(env), name="sentinel")

    env.run()
    return env, network, counters, phase_end


def _run_kernel_scale(seed: int) -> Profile:
    """ROADMAP item 1 at ~2·10⁵ events: the pluggable-queue proof gate.

    Runs the workload three times —

    1. **reference**: compacting heap, per-message delivery (the
       pre-seam kernel, reported under ``ref.sim.*``);
    2. **heap + slotted delivery**;
    3. **calendar + slotted delivery** (the headline configuration,
       reported under plain ``sim.*``);

    asserts the trace digests of (2) and (3) are identical (the
    pop-order-equivalence contract, end to end, under batched dispatch
    and slot coalescing), and asserts the headline configuration beats
    the reference on scheduled events and queue high-water before
    pinning both sides in the baseline (``queue.heap.*`` /
    ``queue.calendar.*`` / ``net.delivery_slots``).
    """
    from repro.simcore.tracing import Tracer

    ref_env, ref_net, ref_counters, _ = _kernel_scale_run(seed)
    heap_sig = _TraceSignature()
    heap_env, heap_net, _heap_counters, _ = _kernel_scale_run(
        seed, queue="heap", slotted=True, probes=(heap_sig,)
    )
    cal_sig = _TraceSignature()
    cal_env, cal_net, cal_counters, phase_end = _kernel_scale_run(
        seed, queue="calendar", slotted=True, probes=(cal_sig,)
    )
    if heap_sig.hexdigest() != cal_sig.hexdigest():
        raise ReproError(
            "kernel_scale: event traces diverged between HeapQueue and "
            "CalendarQueue under identical workloads — the pluggable-queue "
            "pop-order contract is broken"
        )

    ref = ref_counters.snapshot()
    counters = cal_counters.snapshot()
    if counters["sim.heap_high_water"] >= ref["sim.heap_high_water"]:
        raise ReproError(
            "kernel_scale: calendar + slotted delivery did not reduce the "
            f"queue high-water mark ({counters['sim.heap_high_water']:g} vs "
            f"reference {ref['sim.heap_high_water']:g})"
        )
    if counters["sim.events_scheduled"] >= ref["sim.events_scheduled"]:
        raise ReproError(
            "kernel_scale: slotted delivery did not reduce scheduled events "
            f"({counters['sim.events_scheduled']:g} vs reference "
            f"{ref['sim.events_scheduled']:g})"
        )
    for key, value in sorted(ref.items()):
        counters[f"ref.{key}"] = value
    for key, value in sorted(heap_env.queue.stats().items()):
        counters[f"queue.heap.{key}"] = value
    for key, value in sorted(cal_env.queue.stats().items()):
        counters[f"queue.calendar.{key}"] = value
    counters["net.delivery_slots"] = float(cal_net.delivery_slots)
    counters["ref.net.delivery_slots"] = float(ref_net.delivery_slots)

    tracer = Tracer(cal_env)
    root = tracer.record("kernel_scale", 0.0, cal_env.now)
    tracer.record("burst_storm", 0.0, phase_end["storm"], parent=root)
    tracer.record("timer_churn", 0.0, phase_end["churn"], parent=root)
    tracer.record("sentinel_rollover", 0.0, phase_end["sentinel"], parent=root)
    return profile_spans(
        tracer.spans,
        counters=counters,
        meta=_meta("kernel_scale", seed),
    )


#: memory_stress workload shape (~10⁵ events of per-request state
#: churn): enough distinct submissions/sessions/reply ports for the
#: retained-object high-water mark to separate unbounded dicts from the
#: bounded collections, small enough to run in seconds under CI.
_MEMSTRESS_CLIENTS = 300
_MEMSTRESS_ROUNDS = 60
_MEMSTRESS_DEDUP_MAX = 1024
_MEMSTRESS_SESSION_TTL = 5.0
_MEMSTRESS_ROUND_PAUSE = 1.0


def _memory_stress_run(seed: int, bounded: bool, probes: Sequence = ()):
    """Run the retained-state churn workload.

    Returns ``(env, counters, dedup_table, phase_end)``.

    A long-lived *frontdoor* service handles a churn of one-shot
    requests — the per-request state pattern the ``mem-*`` lints
    police, below the protocol layers:

    * **submission dedup** — every client sends each submission twice
      (first copy, then an immediate retransmit); the frontdoor answers
      the duplicate from its dedup table.  One table entry per distinct
      submission: ``clients × rounds`` of them over the run.
    * **session touches** — each handled request stamps a write-only
      per-submission session token (never read back, so expiry cannot
      change behaviour) — the TTL showcase.
    * **ephemeral reply ports** — each client round binds a fresh reply
      port and, in the bounded configuration, closes it after its acks
      arrive (``Port.close`` → ``Network.unbind``).

    With ``bounded=False`` the tables are plain dicts and ports are
    never closed (the unremediated service); with ``bounded=True`` the
    dedup table is an LRU :class:`~repro.core.bounded.BoundedDict`, the
    session table adds a simulated-clock TTL, and ports are closed.  A
    :class:`~repro.core.bounded.RetainedCensus` over the tables and the
    mailbox registry reports the retained high-water through the probe
    seam after every handled request.  The workload draws no random
    numbers and the dedup bound exceeds the retransmit window, so both
    configurations produce byte-identical event traces — asserted via
    :class:`_TraceSignature` in the scenario wrapper.
    """
    from repro.core.bounded import BoundedDict, RetainedCensus
    from repro.net.address import Endpoint
    from repro.net.message import Message
    from repro.net.network import Network
    from repro.net.transport import Port
    from repro.prof.counters import OpCounters
    from repro.simcore.environment import Environment
    from repro.simcore.probe import FanoutProbe

    env = Environment()
    counters = OpCounters()
    if probes:
        env.probe = FanoutProbe([counters, *probes])
    else:
        env.probe = counters
    network = Network(env)
    network.add_host("edge")
    network.add_host("core")
    frontdoor = Endpoint("core", "frontdoor")
    frontdoor_box = network.bind(frontdoor)

    submissions: Any
    sessions: Any
    if bounded:
        submissions = BoundedDict(_MEMSTRESS_DEDUP_MAX)
        sessions = BoundedDict(
            _MEMSTRESS_DEDUP_MAX,
            ttl=_MEMSTRESS_SESSION_TTL,
            clock=lambda: env.now,
        )
    else:
        submissions = {}
        sessions = {}
    census = RetainedCensus(env)
    census.register(submissions)
    census.register(sessions)
    census.register(network._mailboxes)
    phase_end = {"churn": 0.0}

    def frontdoor_server(env):
        while True:
            message = yield frontdoor_box.get()
            sub_id = message.payload
            sessions[sub_id] = env.now  # write-only: expiry is invisible
            cached = submissions.get(sub_id)
            if cached is None:
                outcome = "accepted"
                submissions[sub_id] = outcome
            else:
                outcome = "duplicate"
            network.send(Message(
                src=frontdoor, dst=message.reply_to,
                kind="ack", payload=(sub_id, outcome),
            ))
            census.observe()

    def client(env, idx):
        for round_no in range(_MEMSTRESS_ROUNDS):
            # Deterministic per-round reply port (module-global
            # ephemeral counters would make the two configurations'
            # port names — and trace digests — diverge).
            endpoint = Endpoint("edge", f"reply.c{idx}.r{round_no}")
            port = Port(network, endpoint)
            sub_id = f"sub-{idx}-{round_no}"
            # First copy, then an immediate retransmit: the dedup
            # window one LRU bound must cover.
            for _ in range(2):
                port.send(frontdoor, "submit", payload=sub_id,
                          reply_to=endpoint)
                yield port.recv()
            if bounded:
                port.close()
            phase_end["churn"] = max(phase_end["churn"], env.now)
            yield env.timeout(_MEMSTRESS_ROUND_PAUSE)

    env.process(frontdoor_server(env), name="frontdoor")
    for idx in range(_MEMSTRESS_CLIENTS):
        env.process(client(env, idx), name=f"client-{idx}")

    env.run()
    return env, counters, submissions, phase_end


def _run_memory_stress(seed: int) -> Profile:
    """The retained-memory proof gate: bounded vs. unbounded state.

    Runs the churn workload twice — unbounded reference (reported under
    ``ref.*``) and bounded collections (the headline, plain counters) —
    asserts the two event traces are byte-identical (bounding is
    behaviour-invisible on this workload) and that the bounded
    configuration's ``mem.retained_high_water`` is strictly below the
    reference's, then pins both sides in the baseline for the CI gate.
    """
    from repro.simcore.tracing import Tracer

    ref_sig = _TraceSignature()
    _ref_env, ref_counters, _ref_dedup, _ = _memory_stress_run(
        seed, bounded=False, probes=(ref_sig,)
    )
    sig = _TraceSignature()
    env, counters, dedup, phase_end = _memory_stress_run(
        seed, bounded=True, probes=(sig,)
    )
    if ref_sig.hexdigest() != sig.hexdigest():
        raise ReproError(
            "memory_stress: event traces diverged between unbounded and "
            "bounded collections on the same workload — bounding must be "
            "trace-invisible"
        )
    ref = ref_counters.snapshot()
    snap = counters.snapshot()
    if snap["mem.retained_high_water"] >= ref["mem.retained_high_water"]:
        raise ReproError(
            "memory_stress: bounded collections did not reduce the "
            f"retained-object high-water mark "
            f"({snap['mem.retained_high_water']:g} vs reference "
            f"{ref['mem.retained_high_water']:g})"
        )
    for key, value in sorted(ref.items()):
        snap[f"ref.{key}"] = value
    for name, stat in sorted(dedup.stats().items()):
        snap[f"mem.dedup.{name}"] = float(stat)

    tracer = Tracer(env)
    root = tracer.record("memory_stress", 0.0, env.now)
    tracer.record("submission_churn", 0.0, phase_end["churn"], parent=root)
    return profile_spans(
        tracer.spans,
        counters=snap,
        meta=_meta("memory_stress", seed),
    )


def _run_blackbox_stress(seed: int) -> Profile:
    """The flight recorder's proof gate: observation-only, byte-stable.

    Runs the kernel stress workload three times —

    1. **bare**: no recorder, trace digest only;
    2. **recorded** (the headline): a :class:`~repro.obs.flightrec.
       FlightRecorder` on both seams (probe fan-out and span sink) with
       a predicate trigger tripping on every storm client's final pong
       (40 trips against a dump cap of 8 — the suppression path runs at
       event rate);
    3. **recorded again**, for the dump-byte identity check;

    and asserts (a) the recorded run's event stream is byte-identical
    to the bare run (the observation-only contract) and (b) the two
    recorded runs' first dumps are byte-identical (dumps are pure
    functions of the observed stream).  The baseline pins
    ``obs.flightrec_retained`` — the recorder's retained high-water
    mark, which bounded rings keep flat no matter how many events flow
    by — alongside the usual kernel counters.
    """
    from repro.obs.flightrec import FlightRecorder, OnPredicate, dump_json

    def final_pong(op: str, message) -> Optional[str]:
        if (
            op == "deliver"
            and message.kind == "pong"
            and message.payload == _STRESS_TRIPS - 1
        ):
            return f"storm.final_pong:{message.dst}"
        return None

    def recorded_run():
        recorder = FlightRecorder(
            triggers=(OnPredicate(message=final_pong, name="final_pong"),)
        )
        sig = _TraceSignature()
        tracer, counters = _kernel_stress_run(
            seed, sink=recorder, trace_spans=True, probes=(recorder, sig)
        )
        return recorder, sig, tracer, counters

    bare_sig = _TraceSignature()
    _kernel_stress_run(seed, trace_spans=True, probes=(bare_sig,))
    recorder, sig, tracer, counters = recorded_run()
    recorder2, _sig2, _tracer2, _counters2 = recorded_run()

    if sig.hexdigest() != bare_sig.hexdigest():
        raise ReproError(
            "blackbox_stress: the flight recorder perturbed the event "
            "stream — probes must be observation-only"
        )
    if not recorder.dumps:
        raise ReproError(
            "blackbox_stress: the final-pong trigger never tripped"
        )
    if dump_json(recorder.dumps[0]) != dump_json(recorder2.dumps[0]):
        raise ReproError(
            "blackbox_stress: two identically seeded runs produced "
            "different dump bytes — dumps must be pure functions of the "
            "observed stream"
        )

    snap = counters.snapshot()
    snap["obs.flightrec_retained"] = float(recorder.retained_high_water)
    snap["obs.flightrec_records"] = float(recorder.records_observed)
    snap["obs.flightrec_dumps"] = float(len(recorder.dumps))
    snap["obs.flightrec_suppressed"] = float(recorder.dumps_suppressed)
    return profile_spans(
        tracer.spans,
        counters=snap,
        meta=_meta("blackbox_stress", seed),
    )


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "fig3_gram",
            "single-process GRAM submission (the Fig. 3 cost breakdown)",
            _run_fig3_gram,
        ),
        Scenario(
            "figure1",
            "three-subjob DUROC co-allocation (the quickstart shape)",
            _run_figure1,
        ),
        Scenario(
            "duroc_scaling",
            "six-subjob required co-allocation (the Fig. 4 shape)",
            _run_duroc_scaling,
        ),
        Scenario(
            "campaign_baseline",
            "clean fault-campaign trial under the retrying agent",
            _run_campaign_baseline,
        ),
        Scenario(
            "kernel_stress",
            "raw event-kernel stress: timer churn + message storm "
            "(~5e4 events, the ROADMAP item-1 yardstick)",
            _run_kernel_stress,
        ),
        Scenario(
            "telemetry_stress",
            "kernel stress with a span per operation through the "
            "streaming telemetry pipeline (~1.3e4 spans)",
            _run_telemetry_stress,
        ),
        Scenario(
            "kernel_scale",
            "burst storm + timer churn at ~2e5 events under every queue "
            "implementation: trace-identity and high-water proof gate",
            _run_kernel_scale,
        ),
        Scenario(
            "memory_stress",
            "per-request state churn (~1e5 events) under unbounded vs "
            "bounded collections: retained-memory proof gate",
            _run_memory_stress,
        ),
        Scenario(
            "blackbox_stress",
            "kernel stress under the flight recorder: observation-only "
            "and dump byte-identity proof gate",
            _run_blackbox_stress,
        ),
    )
}


def select_scenarios(names: Optional[Sequence[str]] = None) -> list[Scenario]:
    if not names:
        return [SCENARIOS[name] for name in sorted(SCENARIOS)]
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise ReproError(
            f"unknown scenario(s) {unknown}; pick from {sorted(SCENARIOS)}"
        )
    return [SCENARIOS[name] for name in names]


@dataclass(frozen=True)
class BenchResult:
    """One scenario's run: its profile and the baseline comparison."""

    scenario: Scenario
    profile: Profile
    baseline: Optional[Profile]
    diff: Optional[ProfileDiff]

    @property
    def regressed(self) -> bool:
        return self.diff is not None and bool(self.diff.regressions)

    @property
    def missing_baseline(self) -> bool:
        return self.baseline is None


def run_bench(
    seed: int = DEFAULT_SEED,
    names: Optional[Sequence[str]] = None,
    baseline_dir: Path = BASELINE_DIR,
    threshold_pct: float = 10.0,
) -> list[BenchResult]:
    """Run the selected scenarios and diff each against its baseline."""
    results = []
    for scenario in select_scenarios(names):
        profile = scenario.run(seed)
        baseline_path = Path(baseline_dir) / f"{scenario.name}.json"
        baseline = Profile.load(baseline_path) if baseline_path.is_file() else None
        diff = (
            diff_profiles(baseline, profile, threshold_pct=threshold_pct)
            if baseline is not None
            else None
        )
        results.append(BenchResult(scenario, profile, baseline, diff))
    return results


def update_baselines(
    seed: int = DEFAULT_SEED,
    names: Optional[Sequence[str]] = None,
    baseline_dir: Path = BASELINE_DIR,
) -> list[Path]:
    """Regenerate the checked-in baselines; returns the paths written."""
    return [
        scenario.run(seed).write(Path(baseline_dir) / f"{scenario.name}.json")
        for scenario in select_scenarios(names)
    ]


# -- the perf-trajectory snapshot --------------------------------------------


def snapshot(results: Sequence[BenchResult], seed: int) -> dict[str, Any]:
    """The ``BENCH_5.json`` digest: deterministic, diffable, compact."""
    scenarios: dict[str, Any] = {}
    for result in results:
        profile = result.profile
        scenarios[result.scenario.name] = {
            "total_time": profile.total_time,
            "span_count": profile.span_count,
            "paths": len(profile.paths),
            "counters": {
                name: profile.counters[name]
                for name in SNAPSHOT_COUNTERS
                if name in profile.counters
            },
            "top_exclusive": [
                {"path": stats.path, "exclusive": stats.exclusive}
                for stats in profile.top_exclusive(5)
            ],
        }
    return {
        "format": SNAPSHOT_FORMAT,
        "bench": "repro.prof",
        "pr": 5,
        "seed": seed,
        "scenarios": scenarios,
    }


def write_snapshot(
    results: Sequence[BenchResult], seed: int, path: Path
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot(results, seed), sort_keys=True, indent=2) + "\n")
    return path


# -- wall-clock micro-benchmarks ---------------------------------------------

# The simulator's own hot paths, timed on the host clock.  Explicitly
# machine-dependent: numbers are informational, never gated or written
# into baselines, and the wall-clock reads are confined to this section.


def _bench_event_heap(ops: int) -> float:
    """Seconds to schedule and drain ``ops`` timeouts through the kernel."""
    import time

    from repro.simcore.environment import Environment

    env = Environment()
    start = time.perf_counter()  # repro: noqa det-wallclock
    for i in range(ops):
        env.timeout((i % 97) * 1e-4)
    env.run()
    return time.perf_counter() - start  # repro: noqa det-wallclock


def _bench_network_delivery(ops: int) -> float:
    """Seconds to deliver ``ops`` loopback messages through the network."""
    import time

    from repro.net.address import Endpoint
    from repro.net.message import Message
    from repro.net.network import Network
    from repro.simcore.environment import Environment

    env = Environment()
    network = Network(env)
    network.add_host("a")
    src = Endpoint("a", "bench-src")
    dst = Endpoint("a", "bench-dst")
    network.bind(dst)
    start = time.perf_counter()  # repro: noqa det-wallclock
    for i in range(ops):
        network.send(Message(src=src, dst=dst, kind="bench", payload=i))
    env.run()
    return time.perf_counter() - start  # repro: noqa det-wallclock


def run_microbench(ops: int = 20_000) -> dict[str, dict[str, float]]:
    """Time the simulator hot paths; returns {bench: {seconds, ops_per_sec}}."""
    out: dict[str, dict[str, float]] = {}
    for name, fn in (
        ("event_heap", _bench_event_heap),
        ("network_delivery", _bench_network_delivery),
    ):
        elapsed = fn(ops)
        out[name] = {
            "ops": float(ops),
            "seconds": elapsed,
            "ops_per_sec": ops / elapsed if elapsed > 0 else float("inf"),
        }
    return out
