"""Differential profiles: attribute the delta between two runs.

``diff_profiles(base, new)`` lines the two profiles up path by path
and reports, per path, the change in exclusive simulated time — the
question behind every perf investigation here: *where did the extra
seconds under ``message_loss`` go?*  A path **regresses** when its
self time grows by more than the absolute floor *and* by more than the
percentage threshold (per-path overrides win over the global default);
op counters regress under their own thresholds.  The CLI exits nonzero
when any regression survives, which is the CI perf gate.

Paths only present in ``new`` are treated as growth from zero (they
regress if they clear the absolute floor); paths that disappeared are
reported as improvements.  Like profiles, a diff serializes to
canonical JSON, byte-identical for identical inputs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.prof.profile import Profile

#: Default regression threshold: ≥10 % growth in exclusive time.
DEFAULT_PCT = 10.0

#: Absolute floor (seconds): growth below this never regresses, however
#: large in relative terms — keeps 1 ns jitter on near-zero paths quiet.
DEFAULT_ABS = 1e-6

#: Counter thresholds: ≥10 % and at least half an op.
DEFAULT_COUNTER_PCT = 10.0
DEFAULT_COUNTER_ABS = 0.5


@dataclass(frozen=True)
class DiffEntry:
    """One path's (or counter's) before/after comparison."""

    path: str
    kind: str  # "path" | "counter"
    base: float
    new: float
    regression: bool
    base_count: int = 0
    new_count: int = 0

    @property
    def delta(self) -> float:
        return self.new - self.base

    @property
    def pct(self) -> Optional[float]:
        """Relative change in percent (None when the base is zero)."""
        if self.base == 0.0:
            return None
        return (self.new - self.base) / self.base * 100.0

    def record(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "kind": self.kind,
            "base": self.base,
            "new": self.new,
            "delta": self.delta,
            "pct": self.pct,
            "base_count": self.base_count,
            "new_count": self.new_count,
            "regression": self.regression,
        }


class ProfileDiff:
    """The full comparison; ``regressions`` drives the exit status."""

    def __init__(
        self,
        entries: list[DiffEntry],
        base_meta: Mapping[str, Any],
        new_meta: Mapping[str, Any],
        threshold_pct: float,
        threshold_abs: float,
    ) -> None:
        self.entries = entries
        self.base_meta = dict(base_meta)
        self.new_meta = dict(new_meta)
        self.threshold_pct = threshold_pct
        self.threshold_abs = threshold_abs

    @property
    def regressions(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.regression]

    @property
    def changed(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.delta != 0.0]

    def to_json(self) -> dict[str, Any]:
        return {
            "format": "repro.prof.diff/1",
            "base_meta": self.base_meta,
            "new_meta": self.new_meta,
            "threshold_pct": self.threshold_pct,
            "threshold_abs": self.threshold_abs,
            "regressions": len(self.regressions),
            "entries": [e.record() for e in self.entries],
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True, indent=2) + "\n"


def _regresses(base: float, delta: float, pct: float, floor: float) -> bool:
    if delta <= floor:
        return False
    if base == 0.0:
        return True
    return delta / base * 100.0 > pct


def diff_profiles(
    base: Profile,
    new: Profile,
    threshold_pct: float = DEFAULT_PCT,
    threshold_abs: float = DEFAULT_ABS,
    per_path: Optional[Mapping[str, float]] = None,
    counter_pct: float = DEFAULT_COUNTER_PCT,
    counter_abs: float = DEFAULT_COUNTER_ABS,
) -> ProfileDiff:
    """Compare ``new`` against ``base``.

    ``per_path`` maps exact span paths to percentage thresholds that
    override ``threshold_pct`` for that path alone (e.g. a known-noisy
    queue wait may tolerate 50 %).
    """
    per_path = dict(per_path or {})
    entries: list[DiffEntry] = []

    for path in sorted(set(base.paths) | set(new.paths)):
        b = base.paths.get(path)
        n = new.paths.get(path)
        b_excl = b.exclusive if b is not None else 0.0
        n_excl = n.exclusive if n is not None else 0.0
        entries.append(
            DiffEntry(
                path=path,
                kind="path",
                base=b_excl,
                new=n_excl,
                base_count=b.count if b is not None else 0,
                new_count=n.count if n is not None else 0,
                regression=_regresses(
                    b_excl,
                    n_excl - b_excl,
                    per_path.get(path, threshold_pct),
                    threshold_abs,
                ),
            )
        )

    for name in sorted(set(base.counters) | set(new.counters)):
        b_val = base.counters.get(name, 0.0)
        n_val = new.counters.get(name, 0.0)
        entries.append(
            DiffEntry(
                path=name,
                kind="counter",
                base=b_val,
                new=n_val,
                regression=_regresses(
                    b_val, n_val - b_val, counter_pct, counter_abs
                ),
            )
        )

    entries.sort(key=lambda e: (-abs(e.delta), e.kind, e.path))
    return ProfileDiff(
        entries=entries,
        base_meta=base.meta,
        new_meta=new.meta,
        threshold_pct=threshold_pct,
        threshold_abs=threshold_abs,
    )


def render_diff(diff: ProfileDiff, limit: int = 20, all_entries: bool = False) -> str:
    """Fixed-width report: regressions first, then the largest moves."""
    lines: list[str] = []
    regressions = diff.regressions
    if regressions:
        lines.append(f"REGRESSION: {len(regressions)} path(s) over threshold")
        for entry in regressions:
            lines.append("  " + _entry_line(entry))
    else:
        lines.append("no regressions")

    shown = diff.entries if all_entries else diff.changed[:limit]
    if shown:
        lines.append("")
        lines.append(
            f"{'kind':<8} {'base':>14} {'new':>14} {'delta':>14} {'pct':>9}  path"
        )
        for entry in shown:
            lines.append(_table_line(entry))
    return "\n".join(lines)


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def _entry_line(entry: DiffEntry) -> str:
    pct = f"{entry.pct:+.1f}%" if entry.pct is not None else "new"
    return (
        f"{entry.path} [{entry.kind}] "
        f"{_fmt(entry.base)} -> {_fmt(entry.new)} "
        f"({entry.delta:+.6g}, {pct})"
    )


def _table_line(entry: DiffEntry) -> str:
    pct = f"{entry.pct:+.1f}%" if entry.pct is not None else "new"
    flag = " <-- regression" if entry.regression else ""
    return (
        f"{entry.kind:<8} {_fmt(entry.base):>14} {_fmt(entry.new):>14} "
        f"{entry.delta:>+14.6g} {pct:>9}  {entry.path}{flag}"
    )
