"""Command-line entry point: ``python -m repro.obs``.

Inspect trace and metrics exports produced by an instrumented run::

    python -m repro.obs timeline results/quickstart_trace.jsonl
    python -m repro.obs tree results/quickstart_trace.jsonl trace-1
    python -m repro.obs critical-path results/quickstart_trace.jsonl
    python -m repro.obs summary results/quickstart_trace.jsonl
    python -m repro.obs metrics results/quickstart_metrics.json
    python -m repro.obs report results/telemetry_aggregate.json
    python -m repro.obs blackbox results/flight_crash.json
    python -m repro.obs blackbox a.json --diff b.json

Exit status mirrors ``python -m repro.analysis``: 0 on success, 1 when
the query found nothing to show (empty trace, unknown trace id), the
trace fails parentage validation, or two diffed dumps differ, 2 on
usage errors — including missing, malformed, or truncated input files,
which always produce a one-line error rather than a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.obs.blackbox import (
    diff_dumps,
    load_dump,
    merge_timeline,
    render_diff,
    render_timeline,
)
from repro.obs.export import TraceDump, load_jsonl, span_record
from repro.obs.metrics import histogram_summary
from repro.obs.query import (
    critical_path,
    parentage,
    stats_record,
    summarize,
    trace_ids,
    tree,
)
from repro.obs.render import (
    DEFAULT_MAX_ROWS,
    render_critical_path,
    render_gantt,
    render_metrics,
    render_report,
    render_summary,
    render_tree,
)
from repro.obs.streaming import AGGREGATE_FORMAT, aggregate_trace

#: Minimum fraction of spans whose parent chain must reach a root for a
#: trace to pass ``--validate`` (the repo's acceptance bar).
PARENTAGE_BAR = 0.95


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect trace (JSONL) and metrics (JSON) exports.",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    sub = parser.add_subparsers(dest="command", metavar="COMMAND")

    timeline = sub.add_parser(
        "timeline", help="ASCII Gantt chart of all spans (the Fig. 5 shape)"
    )
    timeline.add_argument("trace", help="JSONL trace export")
    timeline.add_argument(
        "--trace-id", default=None, help="restrict to one trace tree"
    )
    timeline.add_argument(
        "--width", type=int, default=64, help="chart width in columns"
    )
    timeline.add_argument(
        "--max-rows", type=int, default=DEFAULT_MAX_ROWS,
        help="span rows before same-name lanes are collapsed "
        f"(default: {DEFAULT_MAX_ROWS}; 0 = never collapse)",
    )

    tree_cmd = sub.add_parser("tree", help="causal tree of one trace")
    tree_cmd.add_argument("trace", help="JSONL trace export")
    tree_cmd.add_argument(
        "trace_id", nargs="?", default=None,
        help="trace id to show (default: the first trace in the file)",
    )

    crit = sub.add_parser(
        "critical-path", help="longest-ending causal chain of one trace"
    )
    crit.add_argument("trace", help="JSONL trace export")
    crit.add_argument(
        "trace_id", nargs="?", default=None,
        help="trace id to analyze (default: the first trace in the file)",
    )

    summary = sub.add_parser(
        "summary", help="per-span-name duration statistics (p50/p95/max)"
    )
    summary.add_argument("trace", help="JSONL trace export")
    summary.add_argument(
        "--validate", action="store_true",
        help=f"also require ≥{PARENTAGE_BAR:.0%} of spans to have a "
        "complete parent chain (exit 1 otherwise)",
    )

    metrics = sub.add_parser("metrics", help="flatten a metrics snapshot")
    metrics.add_argument("snapshot", help="metrics JSON export")

    report = sub.add_parser(
        "report",
        help="path/tenant aggregate report (streamed snapshot or full dump)",
    )
    report.add_argument(
        "source",
        help=f"a {AGGREGATE_FORMAT} snapshot, or a JSONL trace "
        "to aggregate post-hoc",
    )
    report.add_argument(
        "--top", type=int, default=20, help="paths shown (default: 20)"
    )

    blackbox = sub.add_parser(
        "blackbox",
        help="post-mortem timeline of a flight-recorder dump",
    )
    blackbox.add_argument(
        "dump", help="flight dump (JSON) captured by repro.obs.flightrec"
    )
    blackbox.add_argument(
        "--diff", default=None, metavar="OTHER",
        help="compare against a second dump instead of rendering "
        "(exit 1 when they differ)",
    )
    blackbox.add_argument(
        "--window", type=float, default=None,
        help="only records within this many simulated seconds "
        "before the trigger",
    )
    blackbox.add_argument(
        "--node", default=None,
        help="only records naming this node (protocol events at it, "
        "messages to or from it)",
    )

    return parser


def _load(parser: argparse.ArgumentParser, path: str) -> TraceDump:
    if not Path(path).is_file():
        parser.error(f"no such file: {path}")
    try:
        return load_jsonl(path)
    except (ValueError, KeyError) as exc:
        parser.error(f"cannot parse {path}: {exc}")


def _load_flight(
    parser: argparse.ArgumentParser, path: str
) -> dict[str, Any]:
    if not Path(path).is_file():
        parser.error(f"no such file: {path}")
    try:
        return load_dump(path)
    except ValueError as exc:
        parser.error(f"cannot load {path}: {exc}")


def _pick_trace(
    dump: Any, trace_id: Optional[str]
) -> tuple[Optional[str], list]:
    ids = trace_ids(dump.spans)
    if trace_id is None:
        trace_id = ids[0] if ids else None
    if trace_id is None or trace_id not in ids:
        return trace_id, []
    return trace_id, tree(dump.spans, trace_id)


def _emit(text: str) -> None:
    print(text)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.error("a command is required (see --help)")

    if args.command == "blackbox":
        flight = _load_flight(parser, args.dump)
        if args.diff is not None:
            other = _load_flight(parser, args.diff)
            diff = diff_dumps(flight, other)
            if args.format == "json":
                _emit(json.dumps(diff, sort_keys=True, indent=2))
            else:
                _emit(render_diff(diff))
            return 0 if diff["identical"] else 1
        entries = merge_timeline(flight, window=args.window, node=args.node)
        if args.format == "json":
            _emit(
                json.dumps(
                    {"trigger": flight["trigger"], "records": entries},
                    sort_keys=True,
                )
            )
        else:
            _emit(render_timeline(flight, entries))
        return 0 if entries else 1

    if args.command == "metrics":
        path = Path(args.snapshot)
        if not path.is_file():
            parser.error(f"no such file: {path}")
        try:
            snapshot = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            parser.error(f"cannot parse {path}: {exc}")
        metrics_map = (
            snapshot.get("metrics", {}) if isinstance(snapshot, dict) else None
        )
        if not isinstance(metrics_map, dict) or not all(
            isinstance(entry, dict) for entry in metrics_map.values()
        ):
            parser.error(f"{path}: not a metrics snapshot")
        if args.format == "json":
            _emit(json.dumps(_with_summaries(snapshot), sort_keys=True, indent=2))
        else:
            _emit(render_metrics(snapshot))
        return 0 if snapshot.get("metrics") else 1

    if args.command == "report":
        aggregate = _load_aggregate_source(parser, args.source)
        if args.format == "json":
            _emit(
                json.dumps(
                    _aggregate_with_summaries(aggregate), sort_keys=True, indent=2
                )
            )
        else:
            _emit(render_report(aggregate, top=args.top))
        return 0 if aggregate.get("spans") else 1

    dump = _load(parser, args.trace)

    if args.command == "timeline":
        spans = dump.spans
        marks = dump.marks
        if args.trace_id is not None:
            spans = [s for s in spans if s.trace_id == args.trace_id]
            marks = [m for m in marks if m.trace_id == args.trace_id]
        if args.format == "json":
            _emit(
                json.dumps(
                    [span_record(s) for s in sorted(
                        spans, key=lambda s: (s.start, s.end, s.name)
                    )],
                    sort_keys=True,
                )
            )
        else:
            max_rows = args.max_rows if args.max_rows > 0 else None
            _emit(render_gantt(spans, marks, width=args.width, max_rows=max_rows))
        return 0 if spans else 1

    if args.command in ("tree", "critical-path"):
        trace_id, roots = _pick_trace(dump, args.trace_id)
        if not roots:
            print(
                f"no spans for trace {trace_id!r}"
                if trace_id is not None
                else "no traces in file",
                file=sys.stderr,
            )
            return 1
        if args.command == "tree":
            if args.format == "json":
                _emit(json.dumps([_tree_record(r) for r in roots], sort_keys=True))
            else:
                _emit(f"trace {trace_id}")
                _emit(render_tree(roots))
            return 0
        root = roots[0]
        if args.format == "json":
            _emit(
                json.dumps(
                    [span_record(n.span) for n in critical_path(root)],
                    sort_keys=True,
                )
            )
        else:
            _emit(f"trace {trace_id}")
            _emit(render_critical_path(root))
        return 0

    # summary
    stats = summarize(dump.spans)
    linked, total = parentage(dump.spans)
    coverage = linked / total if total else 0.0
    if args.format == "json":
        _emit(
            json.dumps(
                {
                    "spans": total,
                    "linked": linked,
                    "parentage": coverage,
                    "names": [stats_record(s) for s in stats],
                },
                sort_keys=True,
            )
        )
    else:
        _emit(render_summary(stats))
        _emit(f"parentage: {linked}/{total} spans linked ({coverage:.1%})")
    if not stats:
        return 1
    if args.validate and coverage < PARENTAGE_BAR:
        print(
            f"parentage {coverage:.1%} below the {PARENTAGE_BAR:.0%} bar",
            file=sys.stderr,
        )
        return 1
    return 0


def _load_aggregate_source(
    parser: argparse.ArgumentParser, source: str
) -> dict[str, Any]:
    """An aggregate snapshot — loaded directly, or folded from a dump.

    The ``report`` command accepts both inputs precisely so the two
    can be diffed: the streamed snapshot of a run and the post-hoc
    aggregation of its full dump must produce the same report.
    """
    path = Path(source)
    if not path.is_file():
        parser.error(f"no such file: {source}")
    with path.open() as fh:
        head = fh.read(1024).lstrip()
    if head.startswith("{") and '"record"' not in head.split("\n", 1)[0]:
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            parser.error(f"cannot parse {source}: {exc}")
        if not isinstance(data, dict) or data.get("format") != AGGREGATE_FORMAT:
            parser.error(f"{source}: not a {AGGREGATE_FORMAT} snapshot")
        return data
    dump = _load(parser, source)
    return aggregate_trace(dump).snapshot()


def _aggregate_with_summaries(aggregate: dict[str, Any]) -> dict[str, Any]:
    """Copy of an aggregate with p50/p90/p99 on every series record."""
    out = dict(aggregate)
    out["paths"] = {
        path: {**record, "summary": histogram_summary(record)}
        for path, record in aggregate.get("paths", {}).items()
    }
    out["labels"] = {
        key: {
            name: {**record, "summary": histogram_summary(record)}
            for name, record in series.items()
        }
        for key, series in aggregate.get("labels", {}).items()
    }
    return out


def _with_summaries(snapshot: dict[str, Any]) -> dict[str, Any]:
    """Copy of the snapshot with p50/p90/p99 on every histogram value."""
    out = dict(snapshot)
    out["metrics"] = {}
    for name, entry in snapshot.get("metrics", {}).items():
        if entry.get("type") != "histogram":
            out["metrics"][name] = entry
            continue
        entry = dict(entry)
        entry["values"] = [
            {**value, "summary": histogram_summary(value)}
            for value in entry.get("values", [])
        ]
        out["metrics"][name] = entry
    return out


def _tree_record(node: Any) -> dict[str, Any]:
    record = span_record(node.span)
    record["children"] = [_tree_record(child) for child in node.children]
    return record


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
