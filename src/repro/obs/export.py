"""Trace and metrics exporters.

Two trace formats:

* **JSONL** — one record per line, self-describing and loss-free; the
  native interchange format consumed by ``python -m repro.obs`` and by
  :func:`load_jsonl`.  Records are sorted and serialized with sorted
  keys, so two identical runs produce byte-identical files.
* **Chrome trace** — the ``chrome://tracing`` / Perfetto JSON event
  format, for interactive inspection.  Spans become complete ("X")
  events, marks become instants ("i"); simulated seconds map to
  microseconds.

Metrics snapshots are written as sorted-key JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Union

from repro.simcore.tracing import Mark, Span

#: JSONL format version, bumped on incompatible record changes.
FORMAT_VERSION = 1


@dataclass
class TraceDump:
    """A loaded (or in-memory) trace: just spans and marks.

    Structurally compatible with :class:`~repro.simcore.tracing.Tracer`
    for every read-only consumer in :mod:`repro.obs`.
    """

    spans: list[Span] = field(default_factory=list)
    marks: list[Mark] = field(default_factory=list)


#: Anything with ``.spans`` and ``.marks`` lists (Tracer, TraceDump).
TraceSource = Any


def _clean(value: Any) -> Any:
    """Make an attribute value JSON-representable, deterministically."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _clean(v) for k, v in value.items()}
    return str(value)


def span_record(span: Span) -> dict[str, Any]:
    return {
        "record": "span",
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "attrs": {k: _clean(v) for k, v in span.attrs.items()},
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
    }


def mark_record(mark: Mark) -> dict[str, Any]:
    return {
        "record": "mark",
        "name": mark.name,
        "time": mark.time,
        "attrs": {k: _clean(v) for k, v in mark.attrs.items()},
        "trace_id": mark.trace_id,
        "parent_id": mark.parent_id,
    }


def dumps_record(record: dict[str, Any]) -> str:
    """One record in the canonical JSONL byte form (no newline)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


_dumps = dumps_record


def export_jsonl(trace: TraceSource) -> str:
    """The JSONL export as a string (trailing newline included)."""
    meta = {
        "record": "meta",
        "version": FORMAT_VERSION,
        "spans": len(trace.spans),
        "marks": len(trace.marks),
    }
    span_lines = sorted(
        (_dumps(span_record(s)) for s in trace.spans),
        key=lambda line: (json.loads(line)["start"], line),
    )
    mark_lines = sorted(
        (_dumps(mark_record(m)) for m in trace.marks),
        key=lambda line: (json.loads(line)["time"], line),
    )
    return "\n".join([_dumps(meta), *span_lines, *mark_lines]) + "\n"


def write_jsonl(trace: TraceSource, path: Union[str, Path]) -> Path:
    """Write the JSONL export; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(export_jsonl(trace))
    return path


def load_jsonl(path: Union[str, Path]) -> TraceDump:
    """Load a JSONL export back into spans and marks."""
    dump = TraceDump()
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from exc
        if not isinstance(record, dict):
            raise ValueError(
                f"{path}:{lineno}: expected an object, got "
                f"{type(record).__name__}"
            )
        kind = record.get("record")
        if kind == "meta":
            continue
        if kind == "span":
            dump.spans.append(
                Span(
                    record["name"],
                    record["start"],
                    record["end"],
                    record.get("attrs", {}),
                    trace_id=record.get("trace_id"),
                    span_id=record.get("span_id"),
                    parent_id=record.get("parent_id"),
                )
            )
        elif kind == "mark":
            dump.marks.append(
                Mark(
                    record["name"],
                    record["time"],
                    record.get("attrs", {}),
                    trace_id=record.get("trace_id"),
                    parent_id=record.get("parent_id"),
                )
            )
        else:
            raise ValueError(f"{path}:{lineno}: unknown record type {kind!r}")
    return dump


# -- Chrome trace format -----------------------------------------------------


def chrome_trace(trace: TraceSource) -> dict[str, Any]:
    """The trace as a ``chrome://tracing`` / Perfetto JSON object.

    Each trace tree becomes a process (pid); each span name becomes a
    thread (tid) so same-named spans share a row.  Times are exported
    in microseconds, the format's native unit.
    """
    trace_ids = sorted(
        {s.trace_id for s in trace.spans if s.trace_id is not None}
        | {m.trace_id for m in trace.marks if m.trace_id is not None}
    )
    pids = {tid: idx + 1 for idx, tid in enumerate(trace_ids)}
    names = sorted(
        {s.name for s in trace.spans} | {m.name for m in trace.marks}
    )
    tids = {name: idx + 1 for idx, name in enumerate(names)}

    events: list[dict[str, Any]] = []
    for tid, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "name": "process_name",
                "args": {"name": tid},
            }
        )
    for name, tid_no in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": tid_no,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    for record in sorted(
        (span_record(s) for s in trace.spans),
        key=lambda r: (r["start"], _dumps(r)),
    ):
        args = dict(record["attrs"])
        if record["span_id"] is not None:
            args["span_id"] = record["span_id"]
        if record["parent_id"] is not None:
            args["parent_id"] = record["parent_id"]
        events.append(
            {
                "ph": "X",
                "name": record["name"],
                "pid": pids.get(record["trace_id"], 0),
                "tid": tids[record["name"]],
                "ts": record["start"] * 1e6,
                "dur": (record["end"] - record["start"]) * 1e6,
                "args": args,
            }
        )
    for record in sorted(
        (mark_record(m) for m in trace.marks),
        key=lambda r: (r["time"], _dumps(r)),
    ):
        events.append(
            {
                "ph": "i",
                "s": "p",
                "name": record["name"],
                "pid": pids.get(record["trace_id"], 0),
                "tid": tids[record["name"]],
                "ts": record["time"] * 1e6,
                "args": dict(record["attrs"]),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: TraceSource, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(trace), sort_keys=True) + "\n")
    return path


# -- metrics -----------------------------------------------------------------


def metrics_json(snapshot: dict[str, Any]) -> str:
    """A metrics snapshot as deterministic, human-diffable JSON."""
    return json.dumps(snapshot, sort_keys=True, indent=2) + "\n"


def write_metrics(snapshot: dict[str, Any], path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(metrics_json(snapshot))
    return path


def iter_records(trace: TraceSource) -> Iterable[dict[str, Any]]:
    """All span and mark records, unsorted — for ad-hoc consumers."""
    for span in trace.spans:
        yield span_record(span)
    for mark in trace.marks:
        yield mark_record(mark)
