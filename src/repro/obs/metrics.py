"""Deterministic simulated-time metrics.

A :class:`MetricsRegistry` hands out named instruments — counters,
gauges, histograms with fixed bucket boundaries, and windowed rates —
keyed by (name, sorted label items).  All timestamps come from the
simulated clock, never from the wall clock, so two identical runs
produce byte-identical snapshots.

The registry is deliberately free of imports from the rest of the
package: ``repro.simcore.tracing`` reaches it lazily, and every layer
from the network up can depend on it without cycles.  Hot paths that
are not being measured use :data:`NULL_METRICS`, whose instruments are
shared no-op singletons.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Protocol

#: Sorted (label, value) pairs — the identity of one labeled series.
LabelKey = tuple[tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds): spans from a fast
#: loopback RPC (~10 us) to a multi-minute queue wait.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_dict(key: LabelKey) -> Dict[str, str]:
    return dict(key)


class _Clock(Protocol):
    now: float


class _ZeroClock:
    now = 0.0


class Counter:
    """Monotonically increasing count, one value per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label sets."""
        return sum(self._values.values())

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "values": [
                {"labels": _label_dict(key), "value": self._values[key]}
                for key in sorted(self._values)
            ],
        }


class Gauge:
    """Instantaneous level (queue depth, barrier occupancy, ...).

    Tracks the high-water mark per label set so snapshots capture peak
    occupancy even when the final level has drained back to zero.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}
        self._high: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = value
        if value > self._high.get(key, float("-inf")):
            self._high[key] = value

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        self.set(self._values.get(_label_key(labels), 0.0) + amount, **labels)

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def high_water(self, **labels: Any) -> float:
        return self._high.get(_label_key(labels), 0.0)

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "values": [
                {
                    "labels": _label_dict(key),
                    "value": self._values[key],
                    "high_water": self._high[key],
                }
                for key in sorted(self._values)
            ],
        }


class _HistogramSeries:
    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram:
    """Distribution with fixed bucket upper bounds, one per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"histogram {name!r} buckets must be strictly increasing")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        series.counts[bisect_left(self.buckets, value)] += 1
        series.count += 1
        series.sum += value
        if value < series.min:
            series.min = value
        if value > series.max:
            series.max = value

    def count(self, **labels: Any) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0

    def sum(self, **labels: Any) -> float:
        series = self._series.get(_label_key(labels))
        return series.sum if series is not None else 0.0

    def quantile(self, q: float, **labels: Any) -> float:
        """Upper bound of the bucket holding the q-quantile observation.

        Returns the recorded max for observations beyond the last
        finite bucket, and 0.0 for an empty series.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return 0.0
        rank = max(1, math.ceil(series.count * q))
        cumulative = 0
        for i, upper in enumerate(self.buckets):
            cumulative += series.counts[i]
            if cumulative >= rank:
                return upper
        return series.max

    def snapshot(self) -> dict[str, Any]:
        values = []
        for key in sorted(self._series):
            series = self._series[key]
            cumulative = 0
            bucket_counts = []
            for i, upper in enumerate(self.buckets):
                cumulative += series.counts[i]
                bucket_counts.append({"le": upper, "count": cumulative})
            bucket_counts.append({"le": "+Inf", "count": series.count})
            values.append(
                {
                    "labels": _label_dict(key),
                    "count": series.count,
                    "sum": series.sum,
                    "min": series.min if series.count else 0.0,
                    "max": series.max if series.count else 0.0,
                    "buckets": bucket_counts,
                }
            )
        return {"type": self.kind, "help": self.help, "values": values}


class WindowedRate:
    """Events per second over a sliding window of simulated time."""

    kind = "rate"

    def __init__(
        self,
        name: str,
        clock: _Clock,
        window: float = 10.0,
        help: str = "",
    ) -> None:
        if window <= 0:
            raise ValueError(f"rate {name!r} window must be positive")
        self.name = name
        self.help = help
        self.window = float(window)
        self._clock = clock
        self._events: Dict[LabelKey, Deque[float]] = {}
        self._totals: Dict[LabelKey, int] = {}

    def tick(self, **labels: Any) -> None:
        key = _label_key(labels)
        events = self._events.get(key)
        if events is None:
            events = self._events[key] = deque()
        now = self._clock.now
        events.append(now)
        self._totals[key] = self._totals.get(key, 0) + 1
        self._prune(events, now)

    def _prune(self, events: Deque[float], now: float) -> None:
        horizon = now - self.window
        while events and events[0] <= horizon:
            events.popleft()

    def rate(self, **labels: Any) -> float:
        key = _label_key(labels)
        events = self._events.get(key)
        if not events:
            return 0.0
        self._prune(events, self._clock.now)
        return len(events) / self.window

    def snapshot(self) -> dict[str, Any]:
        values = []
        for key in sorted(self._events):
            events = self._events[key]
            self._prune(events, self._clock.now)
            values.append(
                {
                    "labels": _label_dict(key),
                    "window": self.window,
                    "in_window": len(events),
                    "rate": len(events) / self.window,
                    "total": self._totals.get(key, 0),
                }
            )
        return {"type": self.kind, "help": self.help, "values": values}


#: Quantiles reported in histogram summaries (text and JSON exports).
SUMMARY_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)


def histogram_summary(
    value: Dict[str, Any],
    quantiles: tuple[float, ...] = SUMMARY_QUANTILES,
) -> Dict[str, float]:
    """p50/p90/p99 (upper bucket bounds) from one snapshot value entry.

    Mirrors :meth:`Histogram.quantile` — nearest rank over the
    cumulative bucket counts, the recorded max beyond the last finite
    bucket — but works on the serialized snapshot, so exported metrics
    files can be summarized without the live registry.
    """
    count = int(value.get("count", 0))
    buckets = value.get("buckets", [])
    out: Dict[str, float] = {}
    for q in quantiles:
        key = f"p{q * 100:g}"
        if count == 0:
            out[key] = 0.0
            continue
        rank = max(1, math.ceil(count * q))
        result = float(value.get("max", 0.0))
        for bucket in buckets:
            upper = bucket.get("le")
            if upper == "+Inf":
                continue
            if int(bucket.get("count", 0)) >= rank:
                result = float(upper)
                break
        out[key] = result
    return out


Instrument = Any  # Counter | Gauge | Histogram | WindowedRate


class MetricsRegistry:
    """Named instruments against a simulated clock.

    Accessors are get-or-create: ``registry.counter("x").inc()`` works
    whether or not ``"x"`` was declared before.  Asking for an existing
    name with a different instrument type is an error — a name means
    one thing for the life of a run.
    """

    def __init__(self, clock: Optional[_Clock] = None) -> None:
        self._clock: _Clock = clock if clock is not None else _ZeroClock()
        self._instruments: Dict[str, Instrument] = {}

    @property
    def clock(self) -> _Clock:
        return self._clock

    def _get(
        self, cls: type, name: str, factory: Callable[[], Instrument]
    ) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            # Code-bounded: one entry per metric *name*, and names are
            # string literals at instrumentation sites, not request
            # data.
            instrument = self._instruments[name] = factory()  # repro: noqa mem-grow-only-attr
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, lambda: Histogram(name, help, buckets))

    def rate(self, name: str, window: float = 10.0, help: str = "") -> WindowedRate:
        return self._get(
            WindowedRate, name, lambda: WindowedRate(name, self._clock, window, help)
        )

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready state of every instrument, stably ordered."""
        return {
            "time": self._clock.now,
            "metrics": {
                name: self._instruments[name].snapshot()
                for name in sorted(self._instruments)
            },
        }


class _NullInstrument:
    """Shared no-op stand-in for every instrument type."""

    kind = "null"
    name = "null"
    help = ""

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def tick(self, **labels: Any) -> None:
        pass

    def value(self, **labels: Any) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def high_water(self, **labels: Any) -> float:
        return 0.0

    def count(self, **labels: Any) -> int:
        return 0

    def sum(self, **labels: Any) -> float:
        return 0.0

    def quantile(self, q: float, **labels: Any) -> float:
        return 0.0

    def rate(self, **labels: Any) -> float:
        return 0.0

    def snapshot(self) -> dict[str, Any]:
        return {"type": self.kind, "help": "", "values": []}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """Registry whose instruments do nothing — for untraced hot paths."""

    def __init__(self) -> None:
        super().__init__(clock=None)

    def counter(self, name: str, help: str = "") -> Counter:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def rate(self, name: str, window: float = 10.0, help: str = "") -> WindowedRate:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def names(self) -> list[str]:
        return []

    def snapshot(self) -> dict[str, Any]:
        return {"time": 0.0, "metrics": {}}


#: Shared no-op registry; safe to call from any hot path.
NULL_METRICS = NullMetricsRegistry()
