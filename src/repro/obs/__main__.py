"""``python -m repro.obs`` dispatches to :mod:`repro.obs.cli`."""

import sys

from repro.obs.cli import main

sys.exit(main())
