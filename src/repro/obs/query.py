"""Trace queries: tree assembly, validation, critical path, summaries.

A trace is just a list of :class:`~repro.simcore.tracing.Span` — these
functions reconstruct the causal forest from the ``trace_id`` /
``span_id`` / ``parent_id`` triples and answer the questions the
experiments (and the ``python -m repro.obs`` CLI) ask of it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.simcore.tracing import Span


@dataclass
class SpanNode:
    """One span plus its causal children, start-ordered."""

    span: Span
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.span.name

    def walk(self) -> list["SpanNode"]:
        """This node and every descendant, depth-first."""
        nodes = [self]
        for child in self.children:
            nodes.extend(child.walk())
        return nodes


def _sort_key(span: Span) -> tuple:
    return (span.start, span.end, span.name, span.span_id or 0)


def build_forest(spans: Sequence[Span]) -> list[SpanNode]:
    """Assemble spans into causal trees; returns start-ordered roots.

    A span whose parent is absent from ``spans`` (or that carries no
    ids at all) becomes a root of its own.
    """
    nodes: dict[tuple, SpanNode] = {}
    keyed: list[tuple[Optional[tuple], SpanNode]] = []
    for span in spans:
        node = SpanNode(span)
        if span.trace_id is not None and span.span_id is not None:
            nodes[(span.trace_id, span.span_id)] = node
        keyed.append((None, node))

    roots: list[SpanNode] = []
    for _, node in keyed:
        span = node.span
        parent = (
            nodes.get((span.trace_id, span.parent_id))
            if span.trace_id is not None and span.parent_id is not None
            else None
        )
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: _sort_key(n.span))
    roots.sort(key=lambda n: _sort_key(n.span))
    return roots


def trace_ids(spans: Sequence[Span]) -> list[str]:
    """Distinct trace ids, in first-span-start order."""
    seen: dict[str, float] = {}
    for span in spans:
        if span.trace_id is None:
            continue
        if span.trace_id not in seen or span.start < seen[span.trace_id]:
            seen[span.trace_id] = span.start
    return sorted(seen, key=lambda tid: (seen[tid], tid))


def tree(spans: Sequence[Span], trace_id: str) -> list[SpanNode]:
    """Roots of one trace's causal tree (normally exactly one)."""
    return build_forest([s for s in spans if s.trace_id == trace_id])


def parentage(spans: Sequence[Span]) -> tuple[int, int]:
    """(linked, total): spans whose parent chain reaches a root span.

    A span counts as *linked* when it is itself a root (no
    ``parent_id``) or every hop of its ``parent_id`` chain resolves to
    a recorded span.  The acceptance bar for an instrumented run is
    ≥ 95 % linked.
    """
    index = {
        (s.trace_id, s.span_id): s
        for s in spans
        if s.trace_id is not None and s.span_id is not None
    }
    total = len(list(spans))
    linked = 0
    for span in spans:
        if span.trace_id is None or span.span_id is None:
            continue  # unlinked by construction
        ok = True
        hops = 0
        current = span
        while current.parent_id is not None:
            parent = index.get((current.trace_id, current.parent_id))
            hops += 1
            if parent is None or hops > len(index):
                ok = False
                break
            current = parent
        if ok:
            linked += 1
    return linked, total


def critical_path(root: SpanNode) -> list[SpanNode]:
    """The chain of spans ending latest under ``root``.

    Greedy walk: from each node descend into the child with the
    greatest end time.  For the co-allocation trace this is the
    submit → fork → startup chain that gated the barrier release.
    """
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda n: (n.span.end, _sort_key(n.span)))
        path.append(node)
    return path


@dataclass(frozen=True)
class NameStats:
    """Duration statistics for one span name."""

    name: str
    count: int
    total: float
    p50: float
    p95: float
    max: float


def _percentile(durations: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    rank = max(1, math.ceil(len(durations) * q))
    return durations[rank - 1]


def summarize(spans: Sequence[Span]) -> list[NameStats]:
    """Per-name duration statistics, sorted by total time descending."""
    by_name: dict[str, list[float]] = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span.duration)
    stats = []
    for name, durations in by_name.items():
        durations.sort()
        stats.append(
            NameStats(
                name=name,
                count=len(durations),
                total=sum(durations),
                p50=_percentile(durations, 0.50),
                p95=_percentile(durations, 0.95),
                max=durations[-1],
            )
        )
    stats.sort(key=lambda s: (-s.total, s.name))
    return stats


def stats_record(stats: NameStats) -> dict[str, Any]:
    return {
        "name": stats.name,
        "count": stats.count,
        "total": stats.total,
        "p50": stats.p50,
        "p95": stats.p95,
        "max": stats.max,
    }
