"""Post-mortem analysis of flight-recorder dumps.

A dump (see :mod:`repro.obs.flightrec`) holds the last-N records of
every category — kernel ops, message ops, protocol events, spans — each
stamped with the recorder's global sequence number.  This module turns
one into a **merged causal timeline**: the four streams interleaved in
observation order around the trigger instant, filterable by simulated
time window and by node, rendered as text or JSON.  A ``diff`` mode
compares two dumps structurally (trigger, counts, first divergent
record per category) — the tool behind the repository's
"byte-identical across runs" claims when they ever fail.

CLI: ``python -m repro.obs blackbox DUMP [--diff OTHER]``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Union

from repro.obs.flightrec import CATEGORIES, FLIGHT_FORMAT

#: Category name -> single-letter tag used in the text timeline.
_TAGS = {"kernel": "K", "message": "M", "proto": "P", "span": "S"}


def load_dump(path: Union[str, Path]) -> dict[str, Any]:
    """Load and validate a flight dump; raises ``ValueError`` if unfit."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ValueError(f"cannot read {path}: {exc}") from None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ValueError("not a flight dump (top level is not an object)")
    if data.get("format") != FLIGHT_FORMAT:
        raise ValueError(
            f"not a {FLIGHT_FORMAT} dump "
            f"(format={data.get('format')!r})"
        )
    trigger = data.get("trigger")
    records = data.get("records")
    if not isinstance(trigger, dict) or not isinstance(records, dict):
        raise ValueError("truncated flight dump: missing trigger/records")
    for category in CATEGORIES:
        if not isinstance(records.get(category), list):
            raise ValueError(
                f"truncated flight dump: missing {category!r} records"
            )
    return data


def _names_node(value: Optional[str], node: str) -> bool:
    """True when an address names the node — exactly, or as its host.

    Message endpoints read ``host:port`` (``RM3:gatekeeper``) and
    protocol loci ``name@site`` (``duroc1@client``); ``--node RM3``
    must match both shapes, not just the bare string.
    """
    if value is None:
        return False
    if value == node:
        return True
    if value.split(":", 1)[0] == node:
        return True
    return value.rsplit("@", 1)[-1] == node


def _record_node_match(category: str, record: dict[str, Any], node: str) -> bool:
    if category == "proto":
        return _names_node(record.get("node"), node)
    if category == "message":
        return _names_node(record.get("src"), node) or _names_node(
            record.get("dst"), node
        )
    # Kernel and span records carry no node identity.
    return False


def merge_timeline(
    dump: dict[str, Any],
    window: Optional[float] = None,
    node: Optional[str] = None,
) -> list[dict[str, Any]]:
    """The dump's four record streams merged in observation order.

    Every entry is the record dict plus a ``"category"`` key.  The
    recorder's global ``seq`` totally orders records across categories,
    so the merge *is* the causal order the probe observed.  ``window``
    restricts to records within that many simulated seconds before the
    trigger instant; ``node`` restricts to records naming that node
    (protocol events at it, messages to or from it).
    """
    trigger = dump["trigger"]
    horizon = (
        float(trigger["time"]) - window if window is not None else None
    )
    entries: list[dict[str, Any]] = []
    for category in CATEGORIES:
        for record in dump["records"][category]:
            if horizon is not None and float(record["time"]) < horizon:
                continue
            if node is not None and not _record_node_match(
                category, record, node
            ):
                continue
            entries.append({"category": category, **record})
    entries.sort(key=lambda entry: entry["seq"])
    return entries


def _describe(category: str, record: dict[str, Any]) -> str:
    op = record.get("op", "?")
    if category == "kernel":
        if op == "schedule":
            return (
                f"schedule when={record.get('when')} "
                f"queue={record.get('queue_size')}"
            )
        return f"step when={record.get('when')}"
    if category == "message":
        text = (
            f"{op} #{record.get('msg')} {record.get('kind')} "
            f"{record.get('src')} -> {record.get('dst')}"
        )
        if record.get("corr_id") is not None:
            text += f" corr={record['corr_id']}"
        if record.get("trace_id") is not None:
            text += f" trace={record['trace_id']}/{record.get('span_id')}"
        if record.get("reason") is not None:
            text += f" reason={record['reason']}"
        return text
    if category == "proto":
        attrs = record.get("attrs") or {}
        text = f"{op} {record.get('node')} {record.get('name')}"
        if attrs:
            text += " " + json.dumps(attrs, sort_keys=True)
        return text
    # span
    text = f"{op} {record.get('name')}"
    if record.get("trace_id") is not None:
        text += f" trace={record['trace_id']}/{record.get('span_id')}"
    if record.get("parent_id") is not None:
        text += f" parent={record['parent_id']}"
    return text


def render_timeline(
    dump: dict[str, Any], entries: list[dict[str, Any]]
) -> str:
    """Text rendering: a header block, then one line per record."""
    trigger = dump["trigger"]
    lines = [
        f"flight dump — trigger={trigger.get('trigger')} "
        f"reason={trigger.get('reason')}",
        f"  at t={trigger.get('time'):g} seq={trigger.get('seq')}",
    ]
    counts = dump.get("counts", {})
    parts = []
    for category in CATEGORIES:
        entry = counts.get(category, {})
        parts.append(
            f"{category} {entry.get('live', '?')}/{entry.get('pushed', '?')}"
            f" (-{entry.get('evicted', '?')})"
        )
    lines.append("  live/pushed (-evicted): " + ", ".join(parts))
    suppressed = dump.get("dumps_suppressed", 0)
    if suppressed:
        lines.append(f"  later trips suppressed: {suppressed}")
    lines.append("")
    if not entries:
        lines.append("(no records in the selected window)")
        return "\n".join(lines)
    for entry in entries:
        lines.append(
            f"[{float(entry['time']):>12.6f}] "
            f"{_TAGS.get(entry['category'], '?')} "
            f"{_describe(entry['category'], entry)}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Diff
# ---------------------------------------------------------------------------


def diff_dumps(
    a: dict[str, Any], b: dict[str, Any]
) -> dict[str, Any]:
    """A structural comparison of two dumps.

    Returns ``{"identical": bool, ...}`` where the remaining keys name
    what diverged: the trigger block, per-category counts, and — per
    category — the index of the first differing record plus the surplus
    record counts on either side.
    """
    out: dict[str, Any] = {"identical": True}
    if a.get("trigger") != b.get("trigger"):
        out["identical"] = False
        out["trigger"] = {"a": a.get("trigger"), "b": b.get("trigger")}
    counts: dict[str, Any] = {}
    records: dict[str, Any] = {}
    for category in CATEGORIES:
        ca = (a.get("counts") or {}).get(category)
        cb = (b.get("counts") or {}).get(category)
        if ca != cb:
            counts[category] = {"a": ca, "b": cb}
        ra = (a.get("records") or {}).get(category) or []
        rb = (b.get("records") or {}).get(category) or []
        first: Optional[int] = None
        for idx, (left, right) in enumerate(zip(ra, rb)):
            if left != right:
                first = idx
                break
        if first is not None or len(ra) != len(rb):
            records[category] = {
                "first_divergence": first,
                "only_a": max(0, len(ra) - len(rb)),
                "only_b": max(0, len(rb) - len(ra)),
            }
    if counts:
        out["identical"] = False
        out["counts"] = counts
    if records:
        out["identical"] = False
        out["records"] = records
    return out


def render_diff(diff: dict[str, Any]) -> str:
    """Text rendering of a :func:`diff_dumps` result."""
    if diff["identical"]:
        return "dumps are identical"
    lines = ["dumps differ:"]
    trigger = diff.get("trigger")
    if trigger:
        lines.append(
            f"  trigger: a={trigger['a']!r}"
        )
        lines.append(f"           b={trigger['b']!r}")
    for category, entry in sorted(diff.get("counts", {}).items()):
        lines.append(
            f"  counts[{category}]: a={entry['a']!r} b={entry['b']!r}"
        )
    for category, entry in sorted(diff.get("records", {}).items()):
        where = entry["first_divergence"]
        detail = (
            f"first divergence at record {where}"
            if where is not None
            else "common prefix identical"
        )
        lines.append(
            f"  records[{category}]: {detail}; "
            f"+{entry['only_a']} only in a, +{entry['only_b']} only in b"
        )
    return "\n".join(lines)
