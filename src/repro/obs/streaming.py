"""Streaming telemetry: bounded-memory sinks over the tracer seam.

At paper scale a run's whole trace fits in memory and the end-of-run
exporters in :mod:`repro.obs.export` are the right tool.  At the
10⁵–10⁶-event scale ROADMAP item 1 targets, retaining every
:class:`~repro.simcore.tracing.Span` makes the observability layer the
dominant memory cost.  This module keeps the repo's signature property
— byte-identical output across runs — while folding, sampling, or
spilling spans *as they complete*, through the
:class:`~repro.simcore.tracing.SpanSink` seam:

* :class:`TraceSampler` — Dapper-style head-based sampling: keep/drop
  is decided once per ``trace_id`` by a seeded pure hash (never
  ``hash()``, which varies per process), so whole causal trees are
  kept or dropped atomically and the kept set is identical across
  runs, machines, and interpreter invocations.
* :class:`AggregatingSink` — folds every completed span into
  path-keyed statistics (count, duration histograms) and per-label —
  e.g. per-tenant — latency/goodput series, reusing
  :class:`~repro.obs.metrics.Histogram` instruments and retaining no
  span objects.  :func:`aggregate_trace` builds the identical
  aggregate post-hoc from a full dump, which is how the ``report``
  CLI's streamed and retained answers are cross-checked.
* :class:`JsonlStreamSink` — an incremental exporter: completed
  records pass through a bounded in-memory buffer, overflowing to
  sorted spill runs on disk; ``close()`` merges the runs into a file
  **byte-identical** to :func:`repro.obs.export.export_jsonl` over the
  same spans.
* :class:`TelemetryPipeline` — composes the three: aggregation sees
  every span (aggregates stay complete), the exporter and in-tracer
  retention see only sampled traces.

All sinks are observation-only: they schedule no events and draw no
random numbers, so a sinked run's simulation is byte-identical to a
bare one (gated in CI by ``benchmarks/streaming_gate.py``).
"""

from __future__ import annotations

import hashlib
import heapq
import json
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover
    # Imported lazily at construction time: repro.core's package init
    # reaches repro.net, which imports this module's package — a
    # module-level import here would close that cycle.
    from repro.core.bounded import BoundedDict

from repro.obs.export import (
    FORMAT_VERSION,
    TraceSource,
    dumps_record,
    mark_record,
    span_record,
)
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram
from repro.obs.query import SpanNode, build_forest
from repro.simcore.tracing import Mark, Span, SpanSink

#: Aggregate snapshot format identifier (the ``report`` CLI's input).
AGGREGATE_FORMAT = "repro.obs.aggregate/1"

#: Decimal places kept for duration sums in aggregate snapshots — the
#: same 1 ns resolution :mod:`repro.prof` uses, so fold order (streamed
#: completion order vs. post-hoc forest order) cannot leak into bytes.
ROUND = 9

#: Span attribute keys aggregated as label dimensions by default.
DEFAULT_LABEL_KEYS: tuple[str, ...] = ("tenant", "job")

#: Default bound on records buffered by the incremental exporter.
DEFAULT_BUFFER_SIZE = 1024

#: Bound on cached per-trace state (sampling decisions, id→path
#: indexes).  LRU over trace ids: both caches are recomputable-or-
#: degradable for evicted traces, and the bound comfortably exceeds
#: the number of traces concurrently open in any workload.
TRACE_CACHE_MAX = 4096


class TraceSampler:
    """Deterministic head-based trace sampling: 1-in-``keep_one_in``.

    The decision is a pure function of ``(seed, trace_id)`` — the
    first 8 bytes of a SHA-256 digest reduced modulo ``keep_one_in`` —
    so it is identical across runs and machines, and every span or
    mark of a trace shares its root's fate (whole-tree atomicity).
    Records with no ``trace_id`` are always kept: they cannot be
    attributed to a tree, and dropping them would lose orphan context.
    """

    def __init__(self, keep_one_in: int, seed: int = 0) -> None:
        from repro.core.bounded import BoundedDict

        if keep_one_in < 1:
            raise ValueError(f"keep_one_in must be >= 1, got {keep_one_in!r}")
        self.keep_one_in = int(keep_one_in)
        self.seed = int(seed)
        #: Decision memo.  Bounded LRU: the decision is a pure function
        #: of (seed, trace_id), so an evicted entry is recomputed to
        #: the identical value — the cache only saves the digest.
        self._decisions: "BoundedDict[str, bool]" = BoundedDict(
            TRACE_CACHE_MAX
        )

    def keep(self, trace_id: Optional[str]) -> bool:
        """Whether the trace is in the kept set (cached per trace id)."""
        if trace_id is None or self.keep_one_in == 1:
            return True
        decision = self._decisions.get(trace_id)
        if decision is None:
            digest = hashlib.sha256(
                f"{self.seed}|{trace_id}".encode("utf-8")
            ).digest()
            decision = (
                int.from_bytes(digest[:8], "big") % self.keep_one_in == 0
            )
            self._decisions[trace_id] = decision
        return decision

    def kept_ids(self, trace_ids: Sequence[Optional[str]]) -> set[str]:
        """The subset of ``trace_ids`` this sampler keeps."""
        return {tid for tid in trace_ids if tid is not None and self.keep(tid)}


class AggregatingSink(SpanSink):
    """Folds completed spans into path- and label-keyed statistics.

    No span objects are retained: each completion lands in a
    fixed-bucket :class:`~repro.obs.metrics.Histogram` series keyed by
    the span's *path* (the ``;``-joined root-to-span name chain, the
    same convention as :mod:`repro.prof`) and, for every configured
    label key present in its attrs, a per-label-value series plus an
    activity window for goodput.  Paths are resolved at span *open*
    time — the tracer announces ids through
    :meth:`~repro.simcore.tracing.SpanSink.on_span_start`, so a
    child's chain is known even while its ancestors are still open —
    and the per-trace id→path index holds one interned string per
    span, not the span itself.
    """

    def __init__(
        self,
        label_keys: Sequence[str] = DEFAULT_LABEL_KEYS,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        from repro.core.bounded import BoundedDict

        self.label_keys = tuple(label_keys)
        #: Per-trace id→path index, LRU-bounded over trace ids.  The
        #: bound far exceeds concurrently-open traces; spans of a trace
        #: old enough to be evicted fold under their bare name.
        self._paths: "BoundedDict[str, dict[int, str]]" = BoundedDict(
            TRACE_CACHE_MAX
        )
        self._durations = Histogram(
            "obs.path_duration", "span durations by path", buckets
        )
        self._labels: dict[str, Histogram] = {
            key: Histogram(
                f"obs.{key}_duration", f"span durations by {key}", buckets
            )
            for key in self.label_keys
        }
        self._label_windows: dict[str, dict[str, list[float]]] = {
            key: {} for key in self.label_keys
        }
        self._mark_names: dict[str, int] = {}
        self._span_count = 0
        self._mark_count = 0
        self._window: Optional[list[float]] = None

    # -- sink hooks --------------------------------------------------------

    def on_span_start(
        self,
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
        name: str,
    ) -> None:
        per_trace = self._paths.get(trace_id)
        if per_trace is None:
            per_trace = self._paths[trace_id] = {}
        parent_path = (
            per_trace.get(parent_id) if parent_id is not None else None
        )
        path = f"{parent_path};{name}" if parent_path else name
        per_trace[span_id] = sys.intern(path)

    def on_span(self, span: Span) -> bool:
        self.fold(self.path_of(span), span)
        return False

    def on_mark(self, mark: Mark) -> bool:
        self._mark_count += 1
        # Code-bounded: keyed by mark *name* (one per instrumentation
        # site), not per occurrence.
        self._mark_names[mark.name] = (  # repro: noqa mem-grow-only-attr
            self._mark_names.get(mark.name, 0) + 1
        )
        return False

    # -- folding -----------------------------------------------------------

    def path_of(self, span: Span) -> str:
        """The announced path of ``span`` (its own name if unannounced)."""
        if span.trace_id is not None and span.span_id is not None:
            per_trace = self._paths.get(span.trace_id)
            if per_trace is not None:
                path = per_trace.get(span.span_id)
                if path is not None:
                    return path
        return span.name

    def fold(self, path: str, span: Span) -> None:
        """Fold one completed span (at ``path``) into the aggregates."""
        self._span_count += 1
        duration = span.duration
        self._durations.observe(duration, path=path)
        if self._window is None:
            self._window = [span.start, span.end]
        else:
            if span.start < self._window[0]:
                self._window[0] = span.start
            if span.end > self._window[1]:
                self._window[1] = span.end
        for key in self.label_keys:
            value = span.attrs.get(key)
            if value is None:
                continue
            text = str(value)
            self._labels[key].observe(duration, **{key: text})
            windows = self._label_windows[key]
            window = windows.get(text)
            if window is None:
                windows[text] = [span.start, span.end]
            else:
                if span.start < window[0]:
                    window[0] = span.start
                if span.end > window[1]:
                    window[1] = span.end

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The aggregates as a canonical, JSON-ready dict.

        Counts, min/max, and bucket counts are fold-order-insensitive
        by construction; sums are rounded to :data:`ROUND` decimals so
        streamed-completion order and post-hoc forest order produce
        the same bytes.
        """
        paths: dict[str, Any] = {}
        for value in self._durations.snapshot()["values"]:
            paths[value["labels"]["path"]] = _series_record(value)
        labels: dict[str, Any] = {}
        for key in self.label_keys:
            series: dict[str, Any] = {}
            for value in self._labels[key].snapshot()["values"]:
                name = value["labels"][key]
                record = _series_record(value)
                window = self._label_windows[key][name]
                record["window"] = {"start": window[0], "end": window[1]}
                series[name] = record
            if series:
                labels[key] = series
        return {
            "format": AGGREGATE_FORMAT,
            "spans": self._span_count,
            "marks": self._mark_count,
            "window": (
                {"start": self._window[0], "end": self._window[1]}
                if self._window is not None
                else None
            ),
            "paths": paths,
            "labels": labels,
            "mark_names": dict(sorted(self._mark_names.items())),
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Write the aggregate snapshot as sorted-key JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.snapshot(), sort_keys=True, indent=2) + "\n"
        )
        return path


def _series_record(value: dict[str, Any]) -> dict[str, Any]:
    """One histogram snapshot series, trimmed to the aggregate schema."""
    return {
        "count": value["count"],
        "sum": round(value["sum"], ROUND),
        "min": value["min"],
        "max": value["max"],
        "buckets": value["buckets"],
    }


def aggregate_trace(
    trace: TraceSource,
    label_keys: Sequence[str] = DEFAULT_LABEL_KEYS,
    buckets: tuple[float, ...] = DEFAULT_BUCKETS,
) -> AggregatingSink:
    """Build the post-hoc aggregate of a fully retained trace.

    Paths are assigned by causal-forest assembly (exactly as
    :mod:`repro.prof` does) and folded through the same sink, so for
    any run whose spans all completed with recorded parents the result
    is byte-identical to the streamed aggregate.
    """
    sink = AggregatingSink(label_keys=label_keys, buckets=buckets)

    def visit(node: SpanNode, prefix: str) -> None:
        path = f"{prefix};{node.span.name}" if prefix else node.span.name
        sink.fold(path, node.span)
        for child in node.children:
            visit(child, path)

    for root in build_forest(trace.spans):
        visit(root, "")
    for mark in trace.marks:
        sink.on_mark(mark)
    return sink


def load_aggregate(path: Union[str, Path]) -> dict[str, Any]:
    """Load an aggregate snapshot, validating its format marker."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("format") != AGGREGATE_FORMAT:
        raise ValueError(f"{path}: not a {AGGREGATE_FORMAT} snapshot")
    return data


class JsonlStreamSink(SpanSink):
    """Incremental JSONL export through a bounded buffer.

    Completed records accumulate as ``(sort_key, line)`` pairs; when a
    buffer reaches ``buffer_size`` it is sorted and spilled to a run
    file next to the destination.  :meth:`close` merges the sorted
    runs (``heapq.merge`` — streaming, never all in memory) and writes
    the final file: meta line, spans by ``(start, line)``, marks by
    ``(time, line)`` — the exact order and bytes of
    :func:`repro.obs.export.export_jsonl`, proven by the byte-identity
    tests over every bench scenario.
    """

    def __init__(
        self,
        path: Union[str, Path],
        buffer_size: int = DEFAULT_BUFFER_SIZE,
    ) -> None:
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size!r}")
        self.path = Path(path)
        self.buffer_size = int(buffer_size)
        self._spans: list[tuple[float, str]] = []
        self._marks: list[tuple[float, str]] = []
        self._span_runs: list[Path] = []
        self._mark_runs: list[Path] = []
        self._span_count = 0
        self._mark_count = 0
        self._closed = False

    # -- sink hooks --------------------------------------------------------

    def on_span(self, span: Span) -> bool:
        self._span_count += 1
        self._spans.append((span.start, dumps_record(span_record(span))))
        if len(self._spans) >= self.buffer_size:
            self._spill(self._spans, self._span_runs, "spans")
        return False

    def on_mark(self, mark: Mark) -> bool:
        self._mark_count += 1
        self._marks.append((mark.time, dumps_record(mark_record(mark))))
        if len(self._marks) >= self.buffer_size:
            self._spill(self._marks, self._mark_runs, "marks")
        return False

    def retained(self) -> int:
        return len(self._spans) + len(self._marks)

    # -- spill and merge ---------------------------------------------------

    def _spill(
        self,
        buffer: list[tuple[float, str]],
        runs: list[Path],
        kind: str,
    ) -> None:
        buffer.sort()
        run = self.path.with_name(f"{self.path.name}.{kind}{len(runs)}.run")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with run.open("w") as fh:
            for key, line in buffer:
                # repr() round-trips floats exactly, so the merge key
                # survives the disk trip bit-for-bit.
                fh.write(f"{key!r}\t{line}\n")
        runs.append(run)
        buffer.clear()

    @staticmethod
    def _iter_run(run: Path) -> Iterator[tuple[float, str]]:
        with run.open() as fh:
            for raw in fh:
                key, _, line = raw.rstrip("\n").partition("\t")
                yield (float(key), line)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._spans.sort()
        self._marks.sort()
        meta = dumps_record(
            {
                "record": "meta",
                "version": FORMAT_VERSION,
                "spans": self._span_count,
                "marks": self._mark_count,
            }
        )
        span_streams = [self._iter_run(r) for r in self._span_runs]
        span_streams.append(iter(self._spans))
        mark_streams = [self._iter_run(r) for r in self._mark_runs]
        mark_streams.append(iter(self._marks))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w") as fh:
            fh.write(meta + "\n")
            for _, line in heapq.merge(*span_streams):
                fh.write(line + "\n")
            for _, line in heapq.merge(*mark_streams):
                fh.write(line + "\n")
        for run in self._span_runs + self._mark_runs:
            run.unlink(missing_ok=True)
        self._span_runs.clear()
        self._mark_runs.clear()
        self._spans.clear()
        self._marks.clear()


class TelemetryPipeline(SpanSink):
    """The composed streaming pipeline: sample, aggregate, export.

    Aggregation sees **every** completion — the Dapper split: aggregates
    stay complete while traces are sampled — and the exporter plus the
    tracer's in-memory retention see only traces the sampler keeps.
    With ``retain=False`` (the default) nothing is kept on the tracer
    at all, so telemetry memory is bounded by the exporter's buffer
    plus the aggregate tables.
    """

    def __init__(
        self,
        sampler: Optional[TraceSampler] = None,
        aggregator: Optional[AggregatingSink] = None,
        exporter: Optional[JsonlStreamSink] = None,
        retain: bool = False,
    ) -> None:
        self.sampler = sampler
        self.aggregator = aggregator
        self.exporter = exporter
        self.retain = bool(retain)

    def on_span_start(
        self,
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
        name: str,
    ) -> None:
        if self.aggregator is not None:
            self.aggregator.on_span_start(trace_id, span_id, parent_id, name)

    def on_span(self, span: Span) -> bool:
        if self.aggregator is not None:
            self.aggregator.on_span(span)
        kept = self.sampler is None or self.sampler.keep(span.trace_id)
        if kept and self.exporter is not None:
            self.exporter.on_span(span)
        return kept and self.retain

    def on_mark(self, mark: Mark) -> bool:
        if self.aggregator is not None:
            self.aggregator.on_mark(mark)
        kept = self.sampler is None or self.sampler.keep(mark.trace_id)
        if kept and self.exporter is not None:
            self.exporter.on_mark(mark)
        return kept and self.retain

    def retained(self) -> int:
        return self.exporter.retained() if self.exporter is not None else 0

    def close(self) -> None:
        if self.exporter is not None:
            self.exporter.close()
