"""Text renderers for traces and metrics.

ASCII output only — these back the ``python -m repro.obs`` CLI and the
Fig. 5 style timeline reproduction, and they must render identically
everywhere (CI logs included).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.obs.metrics import histogram_summary
from repro.obs.query import NameStats, SpanNode, critical_path
from repro.simcore.tracing import Mark, Span

#: Character used for span bars in the Gantt chart.
BAR = "#"


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def render_gantt(
    spans: Sequence[Span],
    marks: Sequence[Mark] = (),
    width: int = 64,
    title: Optional[str] = None,
) -> str:
    """One lane per span, time left to right — the Fig. 5 shape.

    Lanes are ordered by start time; each shows the span name, its
    ``[start, end]`` window, and a proportional bar.  Marks are listed
    below the chart with their times.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    if not spans:
        lines.append("(no spans)")
        return "\n".join(lines)

    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    extent = max(t1 - t0, 1e-12)
    label_width = min(32, max(len(s.name) for s in spans) + 2)

    lines.append(
        f"{'span':<{label_width}} {'':{width}} "
        f"[{_fmt(t0)} .. {_fmt(t1)}]s"
    )
    ordered = sorted(spans, key=lambda s: (s.start, s.end, s.name, s.span_id or 0))
    for span in ordered:
        begin = round((span.start - t0) / extent * (width - 1))
        finish = round((span.end - t0) / extent * (width - 1))
        finish = max(finish, begin)
        bar = " " * begin + BAR * (finish - begin + 1)
        bar = bar.ljust(width)
        lines.append(
            f"{span.name:<{label_width}} {bar} "
            f"{_fmt(span.start)} -> {_fmt(span.end)} "
            f"({_fmt(span.duration)}s)"
        )
    for mark in sorted(marks, key=lambda m: (m.time, m.name)):
        offset = round((mark.time - t0) / extent * (width - 1))
        pointer = " " * offset + "^"
        lines.append(f"{mark.name:<{label_width}} {pointer.ljust(width)} @{_fmt(mark.time)}")
    return "\n".join(lines)


def render_tree(roots: Sequence[SpanNode]) -> str:
    """Indented causal tree with per-span windows and durations."""
    if not roots:
        return "(no spans)"
    lines: list[str] = []

    def visit(node: SpanNode, prefix: str, is_last: bool, is_root: bool) -> None:
        span = node.span
        connector = "" if is_root else ("`-- " if is_last else "|-- ")
        attrs = ""
        if span.attrs:
            attrs = "  " + " ".join(
                f"{k}={span.attrs[k]}" for k in sorted(span.attrs)
            )
        lines.append(
            f"{prefix}{connector}{span.name} "
            f"[{_fmt(span.start)} -> {_fmt(span.end)}] "
            f"({_fmt(span.duration)}s){attrs}"
        )
        child_prefix = prefix if is_root else prefix + ("    " if is_last else "|   ")
        for idx, child in enumerate(node.children):
            visit(child, child_prefix, idx == len(node.children) - 1, False)

    for root in roots:
        visit(root, "", True, True)
    return "\n".join(lines)


def render_critical_path(root: SpanNode) -> str:
    """The longest-ending chain under ``root``, one hop per line."""
    path = critical_path(root)
    lines = [
        f"critical path: {len(path)} span(s), "
        f"{_fmt(path[-1].span.end - path[0].span.start)}s "
        f"from {path[0].name!r} start to {path[-1].name!r} end"
    ]
    for depth, node in enumerate(path):
        span = node.span
        lines.append(
            f"  {'  ' * depth}{span.name} "
            f"[{_fmt(span.start)} -> {_fmt(span.end)}] ({_fmt(span.duration)}s)"
        )
    return "\n".join(lines)


def render_summary(stats: Sequence[NameStats]) -> str:
    """Fixed-width per-name duration table (p50/p95/max in seconds)."""
    if not stats:
        return "(no spans)"
    name_width = max(4, max(len(s.name) for s in stats))
    header = (
        f"{'span':<{name_width}} {'count':>6} {'total':>12} "
        f"{'p50':>12} {'p95':>12} {'max':>12}"
    )
    lines = [header, "-" * len(header)]
    for s in stats:
        lines.append(
            f"{s.name:<{name_width}} {s.count:>6} {_fmt(s.total):>12} "
            f"{_fmt(s.p50):>12} {_fmt(s.p95):>12} {_fmt(s.max):>12}"
        )
    return "\n".join(lines)


def render_metrics(snapshot: dict[str, Any]) -> str:
    """Flatten a metrics snapshot into one labelled value per line."""
    metrics = snapshot.get("metrics", {})
    if not metrics:
        return "(no metrics)"
    lines = [f"metrics at t={_fmt(snapshot.get('time', 0.0))}"]
    for name in sorted(metrics):
        entry = metrics[name]
        kind = entry.get("type", "?")
        for value in entry.get("values", []):
            labels = value.get("labels", {})
            label_text = (
                "{" + ",".join(f"{k}={labels[k]}" for k in sorted(labels)) + "}"
                if labels
                else ""
            )
            if kind == "histogram":
                summary = histogram_summary(value)
                quantiles = " ".join(
                    f"{key}={_fmt(summary[key])}" for key in sorted(
                        summary, key=lambda k: float(k[1:])
                    )
                )
                body = (
                    f"count={value.get('count')} sum={_fmt(value.get('sum', 0.0))} "
                    f"min={_fmt(value.get('min', 0.0))} max={_fmt(value.get('max', 0.0))} "
                    f"{quantiles}"
                )
            elif kind == "gauge":
                body = (
                    f"value={_fmt(value.get('value', 0.0))} "
                    f"high_water={_fmt(value.get('high_water', 0.0))}"
                )
            elif kind == "rate":
                body = (
                    f"rate={_fmt(value.get('rate', 0.0))}/s "
                    f"total={_fmt(value.get('total', 0.0))}"
                )
            else:
                body = f"value={_fmt(value.get('value', 0.0))}"
            lines.append(f"  {name}{label_text} [{kind}] {body}")
    return "\n".join(lines)
