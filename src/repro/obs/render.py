"""Text renderers for traces and metrics.

ASCII output only — these back the ``python -m repro.obs`` CLI and the
Fig. 5 style timeline reproduction, and they must render identically
everywhere (CI logs included).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.obs.metrics import histogram_summary
from repro.obs.query import NameStats, SpanNode, critical_path
from repro.simcore.tracing import Mark, Span

#: Character used for span bars in the Gantt chart.
BAR = "#"

#: Row budget above which :func:`render_gantt` collapses same-name
#: spans into aggregate lanes instead of drawing one lane per span.
DEFAULT_MAX_ROWS = 200


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def render_gantt(
    spans: Sequence[Span],
    marks: Sequence[Mark] = (),
    width: int = 64,
    title: Optional[str] = None,
    max_rows: Optional[int] = DEFAULT_MAX_ROWS,
) -> str:
    """One lane per span, time left to right — the Fig. 5 shape.

    Lanes are ordered by start time; each shows the span name, its
    ``[start, end]`` window, and a proportional bar.  Marks are listed
    below the chart with their times.

    Above ``max_rows`` spans the chart downsamples instead of scrolling
    forever: same-name spans collapse into one aggregate lane covering
    their envelope, lanes beyond the budget are cut, and a ``(+N
    more)`` footer accounts for everything not drawn.  Pass
    ``max_rows=None`` to force the full per-span rendering.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    if not spans:
        lines.append("(no spans)")
        return "\n".join(lines)

    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    extent = max(t1 - t0, 1e-12)
    label_width = min(32, max(len(s.name) for s in spans) + 2)

    def bar_for(start: float, end: float) -> str:
        begin = round((start - t0) / extent * (width - 1))
        finish = max(round((end - t0) / extent * (width - 1)), begin)
        return (" " * begin + BAR * (finish - begin + 1)).ljust(width)

    lines.append(
        f"{'span':<{label_width}} {'':{width}} "
        f"[{_fmt(t0)} .. {_fmt(t1)}]s"
    )
    if max_rows is not None and len(spans) > max_rows:
        return "\n".join(
            lines
            + _collapsed_lanes(spans, marks, label_width, width, max_rows, bar_for)
        )
    ordered = sorted(spans, key=lambda s: (s.start, s.end, s.name, s.span_id or 0))
    for span in ordered:
        lines.append(
            f"{span.name:<{label_width}} {bar_for(span.start, span.end)} "
            f"{_fmt(span.start)} -> {_fmt(span.end)} "
            f"({_fmt(span.duration)}s)"
        )
    for mark in sorted(marks, key=lambda m: (m.time, m.name)):
        offset = round((mark.time - t0) / extent * (width - 1))
        pointer = " " * offset + "^"
        lines.append(f"{mark.name:<{label_width}} {pointer.ljust(width)} @{_fmt(mark.time)}")
    return "\n".join(lines)


def _collapsed_lanes(
    spans: Sequence[Span],
    marks: Sequence[Mark],
    label_width: int,
    width: int,
    max_rows: int,
    bar_for: Any,
) -> list[str]:
    """Aggregate same-name lanes for an over-budget Gantt chart."""
    groups: dict[str, list[Span]] = {}
    for span in spans:
        groups.setdefault(span.name, []).append(span)
    lanes = sorted(
        groups.items(),
        key=lambda kv: (min(s.start for s in kv[1]), kv[0]),
    )
    shown = lanes[:max_rows]
    lines: list[str] = []
    for name, members in shown:
        first = min(s.start for s in members)
        last = max(s.end for s in members)
        total = sum(s.duration for s in members)
        lines.append(
            f"{name:<{label_width}} {bar_for(first, last)} "
            f"{_fmt(first)} -> {_fmt(last)} "
            f"({len(members)} spans, {_fmt(total)}s total)"
        )
    hidden_lanes = len(lanes) - len(shown)
    hidden_spans = sum(len(members) for _, members in lanes[max_rows:])
    footer = f"({len(spans)} spans collapsed into {len(shown)} lanes"
    if hidden_lanes:
        footer += f", +{hidden_spans} more in {hidden_lanes} lanes not shown"
    lines.append(footer + ")")
    if marks:
        mark_groups: dict[str, list[Mark]] = {}
        for mark in marks:
            mark_groups.setdefault(mark.name, []).append(mark)
        for name in sorted(mark_groups):
            members = mark_groups[name]
            times = sorted(m.time for m in members)
            suffix = f" (+{len(times) - 1} more)" if len(times) > 1 else ""
            lines.append(
                f"{name:<{label_width}} {'^'.ljust(width)} "
                f"@{_fmt(times[0])}{suffix}"
            )
    return lines


def render_tree(roots: Sequence[SpanNode]) -> str:
    """Indented causal tree with per-span windows and durations."""
    if not roots:
        return "(no spans)"
    lines: list[str] = []

    def visit(node: SpanNode, prefix: str, is_last: bool, is_root: bool) -> None:
        span = node.span
        connector = "" if is_root else ("`-- " if is_last else "|-- ")
        attrs = ""
        if span.attrs:
            attrs = "  " + " ".join(
                f"{k}={span.attrs[k]}" for k in sorted(span.attrs)
            )
        lines.append(
            f"{prefix}{connector}{span.name} "
            f"[{_fmt(span.start)} -> {_fmt(span.end)}] "
            f"({_fmt(span.duration)}s){attrs}"
        )
        child_prefix = prefix if is_root else prefix + ("    " if is_last else "|   ")
        for idx, child in enumerate(node.children):
            visit(child, child_prefix, idx == len(node.children) - 1, False)

    for root in roots:
        visit(root, "", True, True)
    return "\n".join(lines)


def render_critical_path(root: SpanNode) -> str:
    """The longest-ending chain under ``root``, one hop per line."""
    path = critical_path(root)
    lines = [
        f"critical path: {len(path)} span(s), "
        f"{_fmt(path[-1].span.end - path[0].span.start)}s "
        f"from {path[0].name!r} start to {path[-1].name!r} end"
    ]
    for depth, node in enumerate(path):
        span = node.span
        lines.append(
            f"  {'  ' * depth}{span.name} "
            f"[{_fmt(span.start)} -> {_fmt(span.end)}] ({_fmt(span.duration)}s)"
        )
    return "\n".join(lines)


def render_summary(stats: Sequence[NameStats]) -> str:
    """Fixed-width per-name duration table (p50/p95/max in seconds)."""
    if not stats:
        return "(no spans)"
    name_width = max(4, max(len(s.name) for s in stats))
    header = (
        f"{'span':<{name_width}} {'count':>6} {'total':>12} "
        f"{'p50':>12} {'p95':>12} {'max':>12}"
    )
    lines = [header, "-" * len(header)]
    for s in stats:
        lines.append(
            f"{s.name:<{name_width}} {s.count:>6} {_fmt(s.total):>12} "
            f"{_fmt(s.p50):>12} {_fmt(s.p95):>12} {_fmt(s.max):>12}"
        )
    return "\n".join(lines)


def render_report(aggregate: dict[str, Any], top: int = 20) -> str:
    """A streamed-aggregate report: top paths, then per-label sections.

    Consumes the ``repro.obs.aggregate/1`` snapshot written by
    :class:`repro.obs.streaming.AggregatingSink` — the same numbers
    whether the aggregate was folded live or rebuilt post-hoc from a
    full dump, which is exactly what the byte-identity tests assert.
    """
    lines = [
        f"telemetry report: {aggregate.get('spans', 0)} spans, "
        f"{aggregate.get('marks', 0)} marks"
    ]
    window = aggregate.get("window")
    span_seconds = 0.0
    if window:
        span_seconds = float(window["end"]) - float(window["start"])
        lines[0] += f" over [{_fmt(window['start'])} .. {_fmt(window['end'])}]s"

    paths = aggregate.get("paths", {})
    if not paths:
        lines.append("(no paths)")
    else:
        ordered = sorted(
            paths.items(), key=lambda kv: (-kv[1]["sum"], kv[0])
        )
        name_width = max(
            4, min(48, max(len(path) for path, _ in ordered[:top]))
        )
        header = (
            f"{'path':<{name_width}} {'count':>7} {'total':>12} "
            f"{'p50':>10} {'p90':>10} {'p99':>10} {'max':>10}"
        )
        lines += [header, "-" * len(header)]
        for path, record in ordered[:top]:
            summary = histogram_summary(record)
            if len(path) > name_width:  # keep the tail: it names the leaf
                path = "..." + path[len(path) - name_width + 3 :]
            lines.append(
                f"{path:<{name_width}} {record['count']:>7} "
                f"{_fmt(record['sum']):>12} {_fmt(summary['p50']):>10} "
                f"{_fmt(summary['p90']):>10} {_fmt(summary['p99']):>10} "
                f"{_fmt(record['max']):>10}"
            )
        if len(ordered) > top:
            lines.append(f"(+{len(ordered) - top} more paths)")

    for key in sorted(aggregate.get("labels", {})):
        series = aggregate["labels"][key]
        lines.append("")
        lines.append(f"by {key}:")
        name_width = max(len(key), max(len(name) for name in series))
        header = (
            f"  {key:<{name_width}} {'count':>7} {'total':>12} "
            f"{'p50':>10} {'p90':>10} {'p99':>10} {'goodput':>10}"
        )
        lines += [header, "  " + "-" * (len(header) - 2)]
        for name in sorted(series):
            record = series[name]
            summary = histogram_summary(record)
            rec_window = record.get("window")
            active = (
                float(rec_window["end"]) - float(rec_window["start"])
                if rec_window
                else span_seconds
            )
            goodput = record["count"] / active if active > 0 else 0.0
            lines.append(
                f"  {name:<{name_width}} {record['count']:>7} "
                f"{_fmt(record['sum']):>12} {_fmt(summary['p50']):>10} "
                f"{_fmt(summary['p90']):>10} {_fmt(summary['p99']):>10} "
                f"{_fmt(goodput):>8}/s"
            )
    return "\n".join(lines)


def render_metrics(snapshot: dict[str, Any]) -> str:
    """Flatten a metrics snapshot into one labelled value per line."""
    metrics = snapshot.get("metrics", {})
    if not metrics:
        return "(no metrics)"
    lines = [f"metrics at t={_fmt(snapshot.get('time', 0.0))}"]
    for name in sorted(metrics):
        entry = metrics[name]
        kind = entry.get("type", "?")
        for value in entry.get("values", []):
            labels = value.get("labels", {})
            label_text = (
                "{" + ",".join(f"{k}={labels[k]}" for k in sorted(labels)) + "}"
                if labels
                else ""
            )
            if kind == "histogram":
                summary = histogram_summary(value)
                quantiles = " ".join(
                    f"{key}={_fmt(summary[key])}" for key in sorted(
                        summary, key=lambda k: float(k[1:])
                    )
                )
                body = (
                    f"count={value.get('count')} sum={_fmt(value.get('sum', 0.0))} "
                    f"min={_fmt(value.get('min', 0.0))} max={_fmt(value.get('max', 0.0))} "
                    f"{quantiles}"
                )
            elif kind == "gauge":
                body = (
                    f"value={_fmt(value.get('value', 0.0))} "
                    f"high_water={_fmt(value.get('high_water', 0.0))}"
                )
            elif kind == "rate":
                body = (
                    f"rate={_fmt(value.get('rate', 0.0))}/s "
                    f"total={_fmt(value.get('total', 0.0))}"
                )
            else:
                body = f"value={_fmt(value.get('value', 0.0))}"
            lines.append(f"  {name}{label_text} [{kind}] {body}")
    return "\n".join(lines)
