"""The flight recorder: bounded black-box capture with triggered dumps.

At the 10⁵–10⁶-event scale the ROADMAP targets, the streaming telemetry
pipeline deliberately *discards* spans and the bounded tables *evict*
state — so by the time a fault campaign or a ``repro.verify`` monitor
fires, the context that explains the failure is gone.  This module is
the always-on black box that closes that gap: a
:class:`FlightRecorder` rides the :class:`~repro.simcore.probe.Probe`
and :class:`~repro.simcore.tracing.SpanSink` seams, recording every
kernel step/schedule, message send/deliver/drop, protocol
event/access, and span open/close as compact slots-dataclass records
into per-category :class:`FlightRing` buffers of fixed capacity —
O(capacity) memory by construction, policed by the ``mem-*`` lint and
metered through a :class:`~repro.core.bounded.RetainedCensus`.

Declarative :class:`Trigger` rules watch the observed stream: fault
activation (:mod:`repro.faults`), breaker-open / retry-exhaustion
(:mod:`repro.resilience`), a co-allocation abort decision, an
unhandled process failure surfacing through the kernel, or a user
predicate.  When one matches, the recorder freezes its buffers and
captures a *dump*: a canonical sorted-key JSON document carrying the
trigger reason, the simulated timestamp, and the last-N records of
every category, each with trace/span ids so the dump correlates with
the streaming pipeline's kept traces.  Dumps are pure functions of the
observed event stream — the same seeded run always produces
byte-identical dump bytes (raw message ids, the one module-global
counter in the stream, are remapped to recorder-local first-seen ids).

Like every probe, the recorder is observation-only: it never schedules
events or draws random numbers, so a recorded run's simulation is
byte-identical to a bare one (asserted by the ``blackbox_stress``
benchmark).  Post-mortem rendering lives in :mod:`repro.obs.blackbox`
(``python -m repro.obs blackbox``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence, Union

from repro.simcore.probe import Probe
from repro.simcore.tracing import Mark, Span, SpanSink

if TYPE_CHECKING:  # pragma: no cover
    # Imported lazily at construction time: repro.core's package init
    # reaches repro.net, which imports repro.obs — a module-level
    # import here would close that cycle (same break as streaming.py).
    from repro.core.bounded import BoundedDict, RetainedCensus
    from repro.net.message import Message
    from repro.simcore.environment import Environment

#: Dump format tag, bumped on incompatible record changes.
FLIGHT_FORMAT = "repro.obs.flightrec/1"

#: Record categories, in canonical dump order.
CATEGORIES = ("kernel", "message", "proto", "span")

#: Default per-category ring capacity.
DEFAULT_CAPACITY = 256

#: Default cap on dumps retained per run (later trips are counted, not
#: kept — a trigger matching at event rate must not grow memory).
DEFAULT_MAX_DUMPS = 8

_SCALARS = (str, int, float, bool)


def _clean(value: Any) -> Any:
    """A JSON-representable, deterministic copy of an attribute value."""
    if value is None or isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _clean(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    return str(value)


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class KernelRecord:
    """One kernel operation: an event dispatched or scheduled."""

    seq: int
    time: float
    op: str  #: ``"step"`` | ``"schedule"``
    when: float  #: the event's deadline (``== time`` for steps)
    queue_size: int  #: resident queue depth after a schedule (0 for steps)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "time": self.time,
            "op": self.op,
            "when": self.when,
            "queue_size": self.queue_size,
        }


@dataclass(frozen=True, slots=True)
class MessageRecord:
    """One network operation: a message sent, delivered, or dropped.

    ``msg`` is the *recorder-local* message id — raw
    :attr:`~repro.net.message.Message.msg_id` values come from a
    module-global counter and would differ between two runs in one
    process; first-seen remapping keeps dumps byte-identical.
    """

    seq: int
    time: float
    op: str  #: ``"send"`` | ``"deliver"`` | ``"drop"``
    msg: int
    kind: str
    src: str
    dst: str
    corr_id: Optional[int]
    trace_id: Optional[str]
    span_id: Optional[int]
    reason: Optional[str]  #: drop reason (``None`` for send/deliver)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "time": self.time,
            "op": self.op,
            "msg": self.msg,
            "kind": self.kind,
            "src": self.src,
            "dst": self.dst,
            "corr_id": self.corr_id,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "reason": self.reason,
        }


@dataclass(frozen=True, slots=True)
class ProtoRecord:
    """One protocol observation: a named event or a state access."""

    seq: int
    time: float
    op: str  #: ``"event"`` | ``"access"``
    node: str
    name: str  #: event name, or the resource for accesses
    attrs: dict[str, Any]  #: cleaned (JSON-able) attributes

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "time": self.time,
            "op": self.op,
            "node": self.node,
            "name": self.name,
            "attrs": self.attrs,
        }


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One telemetry operation: a span opened/closed, or a mark."""

    seq: int
    time: float
    op: str  #: ``"open"`` | ``"close"`` | ``"mark"``
    name: str
    trace_id: Optional[str]
    span_id: Optional[int]
    parent_id: Optional[int]

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "time": self.time,
            "op": self.op,
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


FlightRecord = Union[KernelRecord, MessageRecord, ProtoRecord, SpanRecord]


# ---------------------------------------------------------------------------
# The ring buffer
# ---------------------------------------------------------------------------


class FlightRing:
    """A fixed-capacity ring of flight records, oldest-first eviction.

    Storage is preallocated once; a push is a single subscript store
    and an index bump — O(1), allocation-free, no resident growth —
    so the recorder can ride the kernel dispatch path.  Eviction is a
    pure function of the push sequence (the oldest record is always
    the victim), the :mod:`repro.core.bounded` determinism contract.
    """

    __slots__ = ("capacity", "pushed", "_slots", "_next", "_filled")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = int(capacity)
        #: Lifetime pushes (``pushed - len(self)`` records were evicted).
        self.pushed = 0
        self._slots: list[Optional[FlightRecord]] = [None] * self.capacity
        self._next = 0
        self._filled = 0

    def push(self, record: FlightRecord) -> None:
        self._slots[self._next] = record
        nxt = self._next + 1
        self._next = 0 if nxt == self.capacity else nxt
        if self._filled < self.capacity:
            self._filled += 1
        self.pushed += 1

    def __len__(self) -> int:
        return self._filled

    @property
    def evicted(self) -> int:
        """Records displaced by later pushes."""
        return self.pushed - self._filled

    def snapshot(self) -> list[FlightRecord]:
        """The live records, oldest first."""
        if self._filled < self.capacity:
            return [r for r in self._slots[: self._filled] if r is not None]
        head = [r for r in self._slots[self._next :] if r is not None]
        tail = [r for r in self._slots[: self._next] if r is not None]
        return head + tail

    def clear(self) -> None:
        """Drop every record (the lifetime ``pushed`` count survives)."""
        self._slots = [None] * self.capacity
        self._next = 0
        self._filled = 0

    def __repr__(self) -> str:
        return (
            f"<FlightRing {self._filled}/{self.capacity} "
            f"pushed={self.pushed}>"
        )


# ---------------------------------------------------------------------------
# Triggers
# ---------------------------------------------------------------------------


class Trigger:
    """One declarative dump rule.

    Subclasses override :meth:`match_event` (protocol events observed
    through the probe seam) and/or :meth:`match_message` (network
    operations), returning a human-readable *reason* string when the
    observation should trip the recorder, ``None`` otherwise.
    Matching must be pure — no side effects, no randomness — so a
    triggered run dumps identically on every replay.
    """

    #: Stable trigger name recorded in the dump.
    name = "trigger"

    def match_event(
        self, node: str, name: str, attrs: dict[str, Any]
    ) -> Optional[str]:
        """Reason to trip on this protocol event, or ``None``."""
        return None

    def match_message(self, op: str, message: "Message") -> Optional[str]:
        """Reason to trip on this message op (send/deliver/drop)."""
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class OnFault(Trigger):
    """A :mod:`repro.faults` spec activated (``fault.apply``)."""

    name = "fault"

    def __init__(self, kinds: Optional[Sequence[str]] = None) -> None:
        #: Restrict to these FaultSpec class names (``None`` = any).
        self.kinds = frozenset(kinds) if kinds is not None else None

    def match_event(
        self, node: str, name: str, attrs: dict[str, Any]
    ) -> Optional[str]:
        if name != "fault.apply":
            return None
        fault = str(attrs.get("fault", "?"))
        if self.kinds is not None and fault not in self.kinds:
            return None
        site = attrs.get("host") or attrs.get("src") or ""
        return f"fault.apply:{fault}:{site}" if site else f"fault.apply:{fault}"


class OnBreakerOpen(Trigger):
    """A circuit breaker tripped OPEN (:mod:`repro.resilience`)."""

    name = "breaker_open"

    def match_event(
        self, node: str, name: str, attrs: dict[str, Any]
    ) -> Optional[str]:
        if name != "resilience.breaker_open":
            return None
        return f"breaker_open:{attrs.get('endpoint', node)}"


class OnRetryExhausted(Trigger):
    """A retry episode gave up (``RetryExhausted`` raised)."""

    name = "retry_exhausted"

    def match_event(
        self, node: str, name: str, attrs: dict[str, Any]
    ) -> Optional[str]:
        if name != "resilience.retry_exhausted":
            return None
        return (
            f"retry_exhausted:{attrs.get('operation', '?')}"
            f":attempts={attrs.get('attempts', '?')}"
        )


class OnAbort(Trigger):
    """The co-allocator decided to abort (barrier abort / 2PC rollback)."""

    name = "coallocation_abort"

    def match_event(
        self, node: str, name: str, attrs: dict[str, Any]
    ) -> Optional[str]:
        if name != "duroc.abort.decision":
            return None
        return (
            f"coallocation_abort:job={attrs.get('job', '?')}"
            f":reason={attrs.get('reason', '?')}"
        )


class OnProcessFailure(Trigger):
    """An unhandled process exception surfaced through the kernel."""

    name = "process_failure"

    def match_event(
        self, node: str, name: str, attrs: dict[str, Any]
    ) -> Optional[str]:
        if name != "process.unhandled":
            return None
        return f"process_unhandled:{attrs.get('error', '?')}"


class OnPredicate(Trigger):
    """A user-defined rule over protocol events and/or message ops.

    Predicates return a truthy value to trip — a string becomes the
    dump reason, any other truthy value uses the trigger's name.
    """

    def __init__(
        self,
        event: Optional[Callable[[str, str, dict[str, Any]], Any]] = None,
        message: Optional[Callable[[str, "Message"], Any]] = None,
        name: str = "predicate",
    ) -> None:
        self._event = event
        self._message = message
        self.name = name

    def _reason(self, verdict: Any) -> Optional[str]:
        if not verdict:
            return None
        return verdict if isinstance(verdict, str) else self.name

    def match_event(
        self, node: str, name: str, attrs: dict[str, Any]
    ) -> Optional[str]:
        if self._event is None:
            return None
        return self._reason(self._event(node, name, attrs))

    def match_message(self, op: str, message: "Message") -> Optional[str]:
        if self._message is None:
            return None
        return self._reason(self._message(op, message))


#: The default rule set: every failure signal the platform emits.
DEFAULT_TRIGGERS: tuple[Trigger, ...] = (
    OnFault(),
    OnBreakerOpen(),
    OnRetryExhausted(),
    OnAbort(),
    OnProcessFailure(),
)


# ---------------------------------------------------------------------------
# The recorder
# ---------------------------------------------------------------------------


class FlightRecorder(Probe, SpanSink):
    """The always-on black box: bounded capture, triggered dumps.

    Attach through :meth:`repro.gridenv.GridBuilder.with_probe` (the
    builder registers it on *both* seams — probe and span sink) or
    bind it by hand (``recorder.bind(env)``, ``env.probe = recorder``,
    ``Tracer(env, sink=recorder)``).  Composable with any other probe
    via the builder's automatic fan-out.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        triggers: Sequence[Trigger] = DEFAULT_TRIGGERS,
        max_dumps: int = DEFAULT_MAX_DUMPS,
    ) -> None:
        if max_dumps < 1:
            raise ValueError(f"max_dumps must be >= 1, got {max_dumps!r}")
        self.env: "Optional[Environment]" = None
        self.capacity = int(capacity)
        self.triggers: tuple[Trigger, ...] = tuple(triggers)
        self.max_dumps = int(max_dumps)
        self._kernel = FlightRing(self.capacity)
        self._message = FlightRing(self.capacity)
        self._proto = FlightRing(self.capacity)
        self._span = FlightRing(self.capacity)
        #: Category name -> ring, in canonical dump order.
        self.rings: dict[str, FlightRing] = {
            "kernel": self._kernel,
            "message": self._message,
            "proto": self._proto,
            "span": self._span,
        }
        #: Captured dumps, oldest first, at most ``max_dumps``.
        self.dumps: list[dict[str, Any]] = []
        #: Trips observed after the dump cap was reached.
        self.dumps_suppressed = 0
        #: While frozen, every hook drops its observation.
        self.frozen = False
        self._seq = 0
        from repro.core.bounded import BoundedDict, RetainedCensus

        #: raw Message.msg_id -> recorder-local id, first-seen order.
        self._msg_local: BoundedDict[int, int] = BoundedDict(4 * self.capacity)
        self._msg_next = 0
        self._census = RetainedCensus()
        for ring in self.rings.values():
            self._census.register(ring)
        # The census and its five sized members live and die with this
        # recorder; there is nothing to unregister mid-run.
        self._census.register(self._msg_local)  # repro: noqa mem-unpaired-register

    # -- wiring ------------------------------------------------------------

    def bind(self, env: "Environment") -> None:
        """Attach to an environment (one recorder observes one run)."""
        self.env = env
        self._census.env = env

    @property
    def retained_high_water(self) -> int:
        """Peak live records across rings and the message-id table."""
        return self._census.high_water

    @property
    def records_observed(self) -> int:
        """Lifetime observations recorded (the global sequence counter)."""
        return self._seq

    def _now(self) -> float:
        env = self.env
        return env.now if env is not None else 0.0

    def _local_msg_id(self, raw: int) -> int:
        local = self._msg_local.get(raw)
        if local is None:
            self._msg_next += 1
            local = self._msg_next
            self._msg_local[raw] = local
        return local

    # -- probe hooks (the hot path) ----------------------------------------

    def on_schedule(self, when: float, queue_size: int) -> None:
        if self.frozen:
            return
        self._seq += 1
        self._kernel.push(
            KernelRecord(self._seq, self._now(), "schedule", when, queue_size)
        )
        self._census.observe()

    def on_step(self, now: float) -> None:
        if self.frozen:
            return
        self._seq += 1
        self._kernel.push(KernelRecord(self._seq, now, "step", now, 0))
        self._census.observe()

    def _message_op(
        self, op: str, message: "Message", reason: Optional[str]
    ) -> None:
        self._seq += 1
        ctx = message.trace_ctx
        self._message.push(
            MessageRecord(
                self._seq,
                self._now(),
                op,
                self._local_msg_id(message.msg_id),
                message.kind,
                str(message.src),
                str(message.dst),
                message.corr_id,
                ctx.trace_id if ctx is not None else None,
                ctx.span_id if ctx is not None else None,
                reason,
            )
        )
        self._census.observe()
        triggers = self.triggers
        for trigger in triggers:
            matched = trigger.match_message(op, message)
            if matched is not None:
                self.trip(matched, trigger=trigger.name)
                break

    def on_send(self, message: "Message") -> None:
        if self.frozen:
            return
        self._message_op("send", message, None)

    def on_deliver(self, message: "Message") -> None:
        if self.frozen:
            return
        self._message_op("deliver", message, None)

    def on_drop(self, message: "Message", reason: str) -> None:
        if self.frozen:
            return
        self._message_op("drop", message, reason)

    def event(self, node: str, name: str, attrs: dict[str, Any]) -> None:
        if self.frozen:
            return
        self._seq += 1
        self._proto.push(
            ProtoRecord(self._seq, self._now(), "event", node, name, _clean(attrs))
        )
        self._census.observe()
        triggers = self.triggers
        for trigger in triggers:
            matched = trigger.match_event(node, name, attrs)
            if matched is not None:
                self.trip(matched, trigger=trigger.name)
                break

    def access(
        self, node: str, resource: str, mode: str, attrs: dict[str, Any]
    ) -> None:
        if self.frozen:
            return
        self._seq += 1
        cleaned = _clean(attrs)
        cleaned["mode"] = mode
        self._proto.push(
            ProtoRecord(self._seq, self._now(), "access", node, resource, cleaned)
        )
        self._census.observe()

    # -- span-sink hooks ----------------------------------------------------

    def on_span_start(
        self,
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
        name: str,
    ) -> None:
        if self.frozen:
            return
        self._seq += 1
        self._span.push(
            SpanRecord(
                self._seq, self._now(), "open", name, trace_id, span_id, parent_id
            )
        )
        self._census.observe()

    def on_span(self, span: Span) -> bool:
        if not self.frozen:
            self._seq += 1
            self._span.push(
                SpanRecord(
                    self._seq,
                    span.end,
                    "close",
                    span.name,
                    span.trace_id,
                    span.span_id,
                    span.parent_id,
                )
            )
            self._census.observe()
        # Retain on the tracer: the recorder only borrows the stream,
        # it does not own the run's span-retention policy.
        return True

    def on_mark(self, mark: Mark) -> bool:
        if not self.frozen:
            self._seq += 1
            self._span.push(
                SpanRecord(
                    self._seq,
                    mark.time,
                    "mark",
                    mark.name,
                    mark.trace_id,
                    None,
                    mark.parent_id,
                )
            )
            self._census.observe()
        return True

    def retained(self) -> int:
        """Live records held by the recorder (SpanSink metering)."""
        return self._census.retained()

    # -- freeze / dump ------------------------------------------------------

    def freeze(self) -> None:
        """Stop recording: every subsequent observation is dropped."""
        self.frozen = True

    def resume(self) -> None:
        """Resume recording after a :meth:`freeze`."""
        self.frozen = False

    def trip(self, reason: str, trigger: str = "manual") -> Optional[dict[str, Any]]:
        """Freeze, capture a dump, resume; returns the dump.

        Beyond ``max_dumps`` the trip is counted
        (:attr:`dumps_suppressed`) and ``None`` is returned — a
        trigger matching at event rate must not grow memory.
        """
        self.freeze()
        try:
            if len(self.dumps) >= self.max_dumps:
                self.dumps_suppressed += 1
                return None
            dump = self._capture(trigger, reason)
            self.dumps.append(dump)
            return dump
        finally:
            self.resume()

    def reset(self) -> None:
        """Clear rings and dumps (lifetime counters survive)."""
        for ring in self.rings.values():
            ring.clear()
        self.dumps = []

    def _capture(self, trigger: str, reason: str) -> dict[str, Any]:
        counts: dict[str, Any] = {}
        records: dict[str, Any] = {}
        for category, ring in self.rings.items():
            counts[category] = {
                "pushed": ring.pushed,
                "live": len(ring),
                "evicted": ring.evicted,
            }
            records[category] = [record.to_dict() for record in ring.snapshot()]
        return {
            "format": FLIGHT_FORMAT,
            "trigger": {
                "trigger": trigger,
                "reason": reason,
                "time": self._now(),
                "seq": self._seq,
            },
            "counts": counts,
            "retained_high_water": self._census.high_water,
            "dumps_suppressed": self.dumps_suppressed,
            "records": records,
        }

    def __repr__(self) -> str:
        return (
            f"<FlightRecorder capacity={self.capacity} seq={self._seq} "
            f"dumps={len(self.dumps)}{' frozen' if self.frozen else ''}>"
        )


# ---------------------------------------------------------------------------
# Dump serialization
# ---------------------------------------------------------------------------


def dump_json(dump: dict[str, Any]) -> str:
    """A dump's canonical byte form: sorted keys, 2-space indent."""
    return json.dumps(dump, sort_keys=True, indent=2) + "\n"


def dump_digest(dump: dict[str, Any]) -> str:
    """SHA-256 of the canonical dump bytes (the replay-identity proof)."""
    return hashlib.sha256(dump_json(dump).encode()).hexdigest()


def write_dump(dump: dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a dump in canonical form; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dump_json(dump))
    return path
