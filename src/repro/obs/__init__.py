"""Grid-wide observability: causal tracing, metrics, trace queries.

Three pillars (see docs/OBSERVABILITY.md):

- **Causal tracing** — ``repro.simcore.tracing`` spans carry
  ``trace_id``/``span_id``/``parent_id`` and contexts ride on network
  messages, so one DUROC request is one trace tree.
- **Metrics** — :mod:`repro.obs.metrics` instruments keyed to the
  simulated clock, wired into transport, GRAM, DUROC, and schedulers.
- **Queries** — exporters (:mod:`repro.obs.export`), tree/critical-path
  analysis (:mod:`repro.obs.query`), renderers (:mod:`repro.obs.render`)
  and the ``python -m repro.obs`` CLI.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    WindowedRate,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
    "WindowedRate",
]
