"""Grid-wide observability: causal tracing, metrics, trace queries.

Three pillars (see docs/OBSERVABILITY.md):

- **Causal tracing** — ``repro.simcore.tracing`` spans carry
  ``trace_id``/``span_id``/``parent_id`` and contexts ride on network
  messages, so one DUROC request is one trace tree.
- **Metrics** — :mod:`repro.obs.metrics` instruments keyed to the
  simulated clock, wired into transport, GRAM, DUROC, and schedulers.
- **Queries** — exporters (:mod:`repro.obs.export`), tree/critical-path
  analysis (:mod:`repro.obs.query`), renderers (:mod:`repro.obs.render`)
  and the ``python -m repro.obs`` CLI.
- **Streaming** — :mod:`repro.obs.streaming` sinks behind the tracer's
  :class:`~repro.simcore.tracing.SpanSink` seam: deterministic trace
  sampling, bounded-memory aggregation, incremental JSONL export.
- **Post-mortem** — :mod:`repro.obs.flightrec` rides the probe and
  span-sink seams as an always-on black box: bounded ring buffers,
  declarative failure triggers, canonical JSON dumps; rendered by
  :mod:`repro.obs.blackbox` (``python -m repro.obs blackbox``).
"""

from repro.obs.blackbox import diff_dumps, load_dump, merge_timeline
from repro.obs.flightrec import (
    DEFAULT_TRIGGERS,
    FLIGHT_FORMAT,
    FlightRecorder,
    FlightRing,
    OnAbort,
    OnBreakerOpen,
    OnFault,
    OnPredicate,
    OnProcessFailure,
    OnRetryExhausted,
    Trigger,
    dump_digest,
    dump_json,
    write_dump,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    WindowedRate,
)
from repro.obs.streaming import (
    AGGREGATE_FORMAT,
    AggregatingSink,
    JsonlStreamSink,
    TelemetryPipeline,
    TraceSampler,
    aggregate_trace,
    load_aggregate,
)

__all__ = [
    "AGGREGATE_FORMAT",
    "AggregatingSink",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_TRIGGERS",
    "FLIGHT_FORMAT",
    "FlightRecorder",
    "FlightRing",
    "Gauge",
    "Histogram",
    "JsonlStreamSink",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
    "OnAbort",
    "OnBreakerOpen",
    "OnFault",
    "OnPredicate",
    "OnProcessFailure",
    "OnRetryExhausted",
    "TelemetryPipeline",
    "TraceSampler",
    "Trigger",
    "WindowedRate",
    "aggregate_trace",
    "diff_dumps",
    "dump_digest",
    "dump_json",
    "load_aggregate",
    "load_dump",
    "merge_timeline",
    "write_dump",
]
