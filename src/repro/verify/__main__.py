"""``python -m repro.verify`` dispatches to :mod:`repro.verify.cli`."""

import sys

from repro.verify.cli import main

sys.exit(main())
