"""Drive monitored runs and reduce them to verification reports.

:func:`verify_campaigns` replays the resilience fault campaigns
(:mod:`repro.resilience.campaign`) with a fresh
:class:`~repro.verify.recorder.Recorder` per trial and evaluates the
full monitor suite over every run; :func:`verify_example` does the same
for the quickstart/Figure-1 scenario.  Reports are canonical JSON
(sorted keys, 2-space indent, trailing newline), so a verification
sweep is byte-identical across repeated runs of the same seed — the CI
``verify`` job asserts exactly that.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable, Optional, Sequence

from repro.analysis.framework import Finding, Severity
from repro.analysis.reporters import finding_payload, format_finding
from repro.verify.events import EventLog, RunContext
from repro.verify.monitors import Monitor, all_monitors, evaluate
from repro.verify.recorder import Recorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.flightrec import FlightRecorder

#: Example scenarios verifiable by name (quickstart *is* Figure 1).
EXAMPLES = ("quickstart", "figure1")


def verify_recorder(
    recorder: Recorder,
    run_id: str,
    monitors: Optional[Sequence[Monitor]] = None,
    select: Optional[Iterable[str]] = None,
    suppress: Optional[Iterable[str]] = None,
    flightrec: "Optional[FlightRecorder]" = None,
) -> tuple[dict[str, Any], list[Finding]]:
    """Evaluate one recorded run; returns (report entry, findings).

    When a :class:`~repro.obs.flightrec.FlightRecorder` that observed
    the same run is passed, any finding trips it — the black box dumps
    the run's last-N records under trigger ``verify.finding``, giving
    the monitor report a post-mortem to point at.
    """
    log = EventLog(recorder.events)
    ctx = RunContext(
        run_id=run_id,
        queue_exhausted=recorder.queue_exhausted,
        end_time=recorder.env.now if recorder.env is not None else 0.0,
    )
    findings = evaluate(
        monitors if monitors is not None else all_monitors(),
        log, ctx, select=select, suppress=suppress,
    )
    if flightrec is not None and findings:
        first = findings[0]
        flightrec.trip(
            f"{first.rule}: {first.message}", trigger="verify.finding"
        )
    entry = {
        "run": run_id,
        "events": len(log),
        "loci": len({event.node for event in log}),
        "queue_exhausted": ctx.queue_exhausted,
        "end_time": round(ctx.end_time, 6),
        "findings": [finding_payload(f) for f in findings],
    }
    return entry, findings


def verify_campaigns(
    seed: int = 42,
    trials: int = 3,
    names: Optional[Sequence[str]] = None,
    select: Optional[Iterable[str]] = None,
    suppress: Optional[Iterable[str]] = None,
) -> dict[str, Any]:
    """Run the fault campaigns under monitors; returns the report."""
    from repro.errors import ReproError
    from repro.resilience.campaign import CAMPAIGNS, run_trial

    if trials < 1:
        raise ReproError(f"trials must be >= 1, got {trials!r}")
    selected = list(names) if names else sorted(CAMPAIGNS)
    unknown = [name for name in selected if name not in CAMPAIGNS]
    if unknown:
        raise ReproError(
            f"unknown campaign(s) {unknown}; pick from {sorted(CAMPAIGNS)}"
        )

    report: dict[str, Any] = {
        "harness": "repro.verify",
        "scenario": "figure1",
        "seed": seed,
        "trials": trials,
        "monitors": [monitor.name for monitor in all_monitors()],
        "runs": [],
    }
    total = 0
    for name in selected:
        campaign = CAMPAIGNS[name]
        for index in range(trials):
            recorder = Recorder()
            run_trial(campaign, seed + index, recorder=recorder)
            entry, findings = verify_recorder(
                recorder, f"{name}/seed{seed + index}",
                select=select, suppress=suppress,
            )
            report["runs"].append(entry)
            total += len(findings)
    report["findings_total"] = total
    return report


def verify_example(
    name: str = "quickstart",
    seed: int = 42,
    select: Optional[Iterable[str]] = None,
    suppress: Optional[Iterable[str]] = None,
) -> dict[str, Any]:
    """Run the Figure-1 quickstart scenario under monitors."""
    from repro.core import CoAllocationRequest
    from repro.errors import ReproError
    from repro.gridenv import GridBuilder

    if name not in EXAMPLES:
        raise ReproError(
            f"unknown example {name!r}; pick from {list(EXAMPLES)}"
        )

    recorder = Recorder()
    grid = (
        GridBuilder(seed=seed)
        .add_machine("RM1", nodes=16)
        .add_machine("RM2", nodes=64)
        .add_machine("RM3", nodes=64)
        .with_monitors(recorder)
        .build()
    )
    request = CoAllocationRequest.from_rsl(
        """
        +(&(resourceManagerContact=RM1:gatekeeper)
           (count=1)(executable=duroc_app)
           (subjobStartType=required))
         (&(resourceManagerContact=RM2:gatekeeper)
           (count=4)(executable=duroc_app)
           (subjobStartType=interactive))
         (&(resourceManagerContact=RM3:gatekeeper)
           (count=4)(executable=duroc_app)
           (subjobStartType=interactive))
        """
    )
    duroc = grid.duroc()

    def agent(env):
        job = duroc.submit(request)
        result = yield from job.commit()
        yield from job.wait_done()
        return result

    grid.run(grid.process(agent(grid.env)))
    entry, findings = verify_recorder(
        recorder, f"{name}/seed{seed}", select=select, suppress=suppress
    )
    return {
        "harness": "repro.verify",
        "scenario": name,
        "seed": seed,
        "trials": 1,
        "monitors": [monitor.name for monitor in all_monitors()],
        "runs": [entry],
        "findings_total": len(findings),
    }


def render_verification_json(report: dict[str, Any]) -> str:
    """The report's canonical byte form: sorted keys, 2-space indent."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def render_verification_text(report: dict[str, Any]) -> str:
    """Per-run summary lines, findings with witnesses, and a total."""
    lines: list[str] = []
    for entry in report["runs"]:
        drained = "drained" if entry["queue_exhausted"] else "horizon"
        lines.append(
            f"{entry['run']}: {entry['events']} events across "
            f"{entry['loci']} loci ({drained}, t_end={entry['end_time']:g}) "
            f"-> {len(entry['findings'])} finding(s)"
        )
        for payload in entry["findings"]:
            finding = Finding(
                file=payload["file"],
                line=payload["line"],
                col=payload["col"],
                rule=payload["rule"],
                severity=Severity(payload["severity"]),
                message=payload["message"],
                witness=tuple(payload.get("witness", ())),
            )
            lines.append(format_finding(finding))
    total = report["findings_total"]
    lines.append(
        f"{total} finding(s) across {len(report['runs'])} monitored run(s)"
    )
    return "\n".join(lines)
