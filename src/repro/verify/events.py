"""The happens-before event log.

A :class:`ProtoEvent` is one observed protocol event — a message send,
delivery, or drop, a named component event, or a state access — stamped
with the simulated time and the recording locus's vector clock.  The
:class:`EventLog` indexes a run's events and answers happens-before
queries; :meth:`EventLog.witness_path` reconstructs a *connected*
causal chain (program-order and message edges only) ending at a given
event, which monitors embed in their findings as the violation witness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional

from repro.verify.vclock import VClock

#: Event kinds recorded by the probe.
SEND = "send"
DELIVER = "deliver"
DROP = "drop"
EVENT = "event"
ACCESS = "access"


@dataclass(frozen=True)
class ProtoEvent:
    """One observed event of a verified run."""

    seq: int
    time: float
    node: str
    kind: str
    name: str
    clock: VClock
    attrs: Mapping[str, Any] = field(default_factory=dict)
    #: Sequence number of the previous event on the same node (program
    #: order), or None for the node's first event.
    prev: Optional[int] = None
    #: For DELIVER/DROP events: sequence number of the matching SEND.
    link: Optional[int] = None

    def describe(self) -> str:
        """One-line rendering used in witness paths and reports."""
        extra = ""
        if self.kind == ACCESS:
            extra = f" [{self.attrs.get('mode', '?')}]"
        job = self.attrs.get("job")
        if job is not None:
            extra += f" job={job}"
        slot = self.attrs.get("slot")
        if slot is not None:
            extra += f" slot={slot}"
        rank = self.attrs.get("rank")
        if rank is not None:
            extra += f" rank={rank}"
        return f"#{self.seq} t={self.time:.6g} {self.node} {self.kind} {self.name}{extra}"


@dataclass(frozen=True)
class RunContext:
    """What the runner knows about a finished run, beyond its events."""

    run_id: str
    #: True when the simulation ran its event queue dry (as opposed to
    #: stopping at a horizon with events still pending) — the condition
    #: under which "will eventually happen" claims become refutable.
    queue_exhausted: bool = True
    end_time: float = 0.0


class EventLog:
    """An indexed, queryable record of one verified run."""

    def __init__(self, events: list[ProtoEvent]) -> None:
        self.events = events
        self._by_seq: dict[int, ProtoEvent] = {e.seq: e for e in events}

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ProtoEvent]:
        return iter(self.events)

    def get(self, seq: int) -> Optional[ProtoEvent]:
        return self._by_seq.get(seq)

    # -- selection ----------------------------------------------------------

    def named(self, name: str, kind: Optional[str] = None, **attrs: Any) -> list[ProtoEvent]:
        """Events with the given name (and kind / attr filter)."""
        return [
            e
            for e in self.events
            if e.name == name
            and (kind is None or e.kind == kind)
            and all(e.attrs.get(k) == v for k, v in attrs.items())
        ]

    def of_kind(self, kind: str) -> list[ProtoEvent]:
        return [e for e in self.events if e.kind == kind]

    def accesses(self) -> list[ProtoEvent]:
        return self.of_kind(ACCESS)

    # -- happens-before -----------------------------------------------------

    def happens_before(self, a: ProtoEvent, b: ProtoEvent) -> bool:
        """True iff ``a`` causally precedes ``b``."""
        return a.seq != b.seq and a.clock.leq(b.clock)

    def concurrent(self, a: ProtoEvent, b: ProtoEvent) -> bool:
        """Neither event precedes the other."""
        return a.seq != b.seq and a.clock.concurrent(b.clock)

    # -- witnesses -----------------------------------------------------------

    def witness_path(
        self, target: ProtoEvent, limit: int = 24
    ) -> list[ProtoEvent]:
        """A connected happens-before chain ending at ``target``.

        Walks backwards preferring message edges (a delivery's matching
        send) over program order, so the witness crosses loci where
        causality crossed the network.  Consecutive entries of the
        returned list are always related by one program-order or one
        send→deliver edge; the whole path therefore certifies
        ``path[0] -> ... -> target`` under happens-before.
        """
        chain: list[ProtoEvent] = [target]
        current = target
        while len(chain) < max(2, limit):
            nxt: Optional[ProtoEvent] = None
            if current.link is not None:
                nxt = self._by_seq.get(current.link)
            if nxt is None and current.prev is not None:
                nxt = self._by_seq.get(current.prev)
            if nxt is None:
                break
            chain.append(nxt)
            current = nxt
        chain.reverse()
        return chain

    def render_witness(self, target: ProtoEvent, limit: int = 24) -> tuple[str, ...]:
        """The witness path as display lines for a finding."""
        return tuple(e.describe() for e in self.witness_path(target, limit))
