"""The vector-clock recorder: a :class:`~repro.simcore.probe.Probe`.

One :class:`Recorder` observes one run.  It maintains a vector clock
per *locus of control* — a co-allocator job, a remote application
process, a site service — ticks it on every observed event, stamps the
sender's clock onto every :class:`~repro.net.message.Message` at send
time (``Message.vclock``), and merges it into the receiver's clock at
delivery.  The result is an append-only :class:`ProtoEvent` list whose
clocks encode the run's happens-before relation exactly.

Loci: components register their endpoints with
:meth:`Recorder.register_locus` (the DUROC job registers its barrier
port and GRAM-callback listener under one ``jobid@host`` locus, since
its listener/driver/watchdog processes share state legitimately in the
single-threaded simulation).  Unregistered endpoints are their own
locus, which is the right granularity for spawned application
processes — each binds a unique per-pid port.

Everything here is deterministic: no wall clock, no RNG, ids from the
event list's length.  Attaching a recorder never schedules events or
draws random numbers, so a monitored run is byte-identical to an
unmonitored one (tested).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.simcore.probe import Probe
from repro.verify.events import (
    ACCESS,
    DELIVER,
    DROP,
    EVENT,
    SEND,
    ProtoEvent,
)
from repro.verify.vclock import VClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message
    from repro.simcore.environment import Environment

#: Payload fields worth keeping on message events (scalars only).
_SCALAR_TYPES = (str, int, float, bool)


def _payload_summary(payload: Any) -> dict[str, Any]:
    """Scalar fields of a dict payload, endpoints rendered as strings."""
    if not isinstance(payload, dict):
        return {}
    out: dict[str, Any] = {}
    for key, value in payload.items():
        if isinstance(value, _SCALAR_TYPES) or value is None:
            out[key] = value
        elif hasattr(value, "host") and hasattr(value, "service"):
            out[key] = str(value)
    return out


class Recorder(Probe):
    """Record a run's protocol events under vector clocks."""

    def __init__(self) -> None:
        self.events: list[ProtoEvent] = []
        self.env: "Optional[Environment]" = None
        self._clocks: dict[str, VClock] = {}
        self._locus: dict[str, str] = {}
        self._last_on_node: dict[str, int] = {}
        self._send_seq: dict[int, int] = {}
        self._deliveries: dict[int, int] = {}

    # -- wiring ------------------------------------------------------------

    def bind(self, env: "Environment") -> None:
        """Attach to an environment (one recorder observes one run)."""
        self.env = env

    def register_locus(self, endpoint: str, locus: str) -> None:
        self._locus[endpoint] = locus

    def node_of(self, endpoint: Any) -> str:
        """The locus an endpoint (or node label) resolves to."""
        key = str(endpoint)
        return self._locus.get(key, key)

    # -- event recording ----------------------------------------------------

    def _now(self) -> float:
        return self.env.now if self.env is not None else 0.0

    def _append(
        self,
        node: str,
        kind: str,
        name: str,
        clock: VClock,
        attrs: dict[str, Any],
        link: Optional[int] = None,
        advances_node: bool = True,
    ) -> ProtoEvent:
        seq = len(self.events) + 1
        prev = self._last_on_node.get(node) if advances_node else None
        event = ProtoEvent(
            seq=seq,
            time=self._now(),
            node=node,
            kind=kind,
            name=name,
            clock=clock,
            attrs=attrs,
            prev=prev,
            link=link,
        )
        self.events.append(event)
        if advances_node:
            self._last_on_node[node] = seq
        return event

    def _tick(self, node: str) -> VClock:
        clock = self._clocks.get(node, VClock()).tick(node)
        self._clocks[node] = clock
        return clock

    # -- Probe interface ----------------------------------------------------

    def on_send(self, message: "Message") -> None:
        node = self.node_of(message.src)
        clock = self._tick(node)
        message.vclock = clock.as_dict()
        attrs: dict[str, Any] = {
            "msg_id": message.msg_id,
            "src": str(message.src),
            "dst": str(message.dst),
        }
        if message.corr_id is not None:
            attrs["corr_id"] = message.corr_id
        attrs.update(_payload_summary(message.payload))
        event = self._append(node, SEND, message.kind, clock, attrs)
        self._send_seq[message.msg_id] = event.seq

    def on_deliver(self, message: "Message") -> None:
        node = self.node_of(message.dst)
        merged = self._clocks.get(node, VClock()).merge(message.vclock)
        self._clocks[node] = merged
        clock = self._tick(node)
        attrs: dict[str, Any] = {
            "msg_id": message.msg_id,
            "src": str(message.src),
            "dst": str(message.dst),
            "copy": self._deliveries.get(message.msg_id, 0) + 1,
        }
        self._deliveries[message.msg_id] = attrs["copy"]
        attrs.update(_payload_summary(message.payload))
        self._append(
            node, DELIVER, message.kind, clock, attrs,
            link=self._send_seq.get(message.msg_id),
        )

    def on_drop(self, message: "Message", reason: str) -> None:
        # Drops never advance any locus's clock — the destination did
        # not observe anything.  Recorded on a pseudo-node for loss
        # accounting, carrying the send-time clock.
        clock = VClock(message.vclock) if message.vclock else VClock()
        self._append(
            "net",
            DROP,
            message.kind,
            clock,
            {
                "msg_id": message.msg_id,
                "src": str(message.src),
                "dst": str(message.dst),
                "reason": reason,
            },
            link=self._send_seq.get(message.msg_id),
            advances_node=False,
        )

    def event(self, node: str, name: str, attrs: dict[str, Any]) -> None:
        locus = self.node_of(node)
        clock = self._tick(locus)
        self._append(locus, EVENT, name, clock, dict(attrs))

    def access(
        self, node: str, resource: str, mode: str, attrs: dict[str, Any]
    ) -> None:
        locus = self.node_of(node)
        clock = self._tick(locus)
        merged = dict(attrs)
        merged["mode"] = mode
        self._append(locus, ACCESS, resource, clock, merged)

    # -- convenience ---------------------------------------------------------

    @property
    def queue_exhausted(self) -> bool:
        """True when the bound environment has no live events pending."""
        if self.env is None:
            return True
        return self.env.peek() == float("inf")
