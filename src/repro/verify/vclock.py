"""Vector clocks for the happens-before relation.

A :class:`VClock` is an immutable mapping ``node -> count``.  The
recorder maintains one clock per locus of control and ticks it on every
observed event; message sends stamp the sender's clock onto the message
and deliveries merge it into the receiver's.  With per-event ticks the
standard result holds: event *a* happens-before event *b* iff
``a.clock <= b.clock`` (componentwise) and the clocks differ.
"""

from __future__ import annotations

from typing import Iterator, Mapping


class VClock:
    """An immutable vector clock."""

    __slots__ = ("_clock",)

    def __init__(self, clock: Mapping[str, int] | None = None) -> None:
        self._clock: dict[str, int] = dict(clock) if clock else {}

    # -- construction ------------------------------------------------------

    def tick(self, node: str) -> "VClock":
        """A new clock with ``node``'s component advanced by one."""
        out = dict(self._clock)
        out[node] = out.get(node, 0) + 1
        return VClock(out)

    def merge(self, other: "VClock | Mapping[str, int] | None") -> "VClock":
        """Componentwise maximum of the two clocks."""
        if other is None:
            return self
        items = other._clock if isinstance(other, VClock) else other
        out = dict(self._clock)
        for node, count in items.items():
            if count > out.get(node, 0):
                out[node] = count
        return VClock(out)

    # -- comparison --------------------------------------------------------

    def leq(self, other: "VClock") -> bool:
        """True iff every component of self is <= the other clock's."""
        return all(
            count <= other._clock.get(node, 0)
            for node, count in self._clock.items()
        )

    def happens_before(self, other: "VClock") -> bool:
        """Strictly-before: leq and not equal."""
        return self.leq(other) and self._clock != other._clock

    def concurrent(self, other: "VClock") -> bool:
        """Neither clock precedes the other."""
        return not self.leq(other) and not other.leq(self)

    # -- mapping protocol ---------------------------------------------------

    def get(self, node: str, default: int = 0) -> int:
        return self._clock.get(node, default)

    def __getitem__(self, node: str) -> int:
        return self._clock.get(node, 0)

    def __iter__(self) -> Iterator[str]:
        return iter(self._clock)

    def __len__(self) -> int:
        return len(self._clock)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VClock):
            return NotImplemented
        return self._clock == other._clock

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._clock.items())))

    def as_dict(self) -> dict[str, int]:
        """A plain-dict snapshot (for message stamping / serialization)."""
        return dict(self._clock)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{node}:{count}" for node, count in sorted(self._clock.items())
        )
        return f"<VClock {inner}>"
