"""Runtime protocol verification (dynamic analysis).

This package turns the deterministic simulation into a model checker
for the paper's co-allocation protocol: a :class:`~repro.verify.recorder.Recorder`
attaches vector clocks to every simulated message and builds a
happens-before event log, and a suite of :class:`~repro.verify.monitors.Monitor`
s evaluates protocol invariants over that log — race freedom (``hb-*``),
two-phase-commit safety (``tpc-*``), and event-queue liveness (``dl-*``).

Monitors emit :class:`repro.analysis.framework.Finding` records through
the same rule-id / ``--select`` machinery and reporters as the static
checkers, so ``python -m repro.verify`` reads exactly like
``python -m repro.analysis`` — but over executions instead of source.
"""

from repro.verify.events import EventLog, ProtoEvent, RunContext
from repro.verify.monitors import Monitor, all_monitors, evaluate
from repro.verify.recorder import Recorder
from repro.verify.runner import (
    render_verification_json,
    render_verification_text,
    verify_campaigns,
    verify_example,
)
from repro.verify.vclock import VClock

__all__ = [
    "EventLog",
    "Monitor",
    "ProtoEvent",
    "Recorder",
    "RunContext",
    "VClock",
    "all_monitors",
    "evaluate",
    "render_verification_json",
    "render_verification_text",
    "verify_campaigns",
    "verify_example",
]
