"""Command-line entry point: ``python -m repro.verify``.

Runs the fault campaigns (and/or the quickstart example) under the
runtime-verification monitors and reports findings through the shared
analysis reporters.

Exit status: 0 when every monitored run is clean, 1 when any finding
survives selection/suppression, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.verify.monitors import all_monitors
from repro.verify.runner import (
    EXAMPLES,
    render_verification_json,
    render_verification_text,
    verify_campaigns,
    verify_example,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Runtime protocol verification: replay fault campaigns under "
            "vector-clock monitors (races, 2PC safety, deadlocks)."
        ),
    )
    parser.add_argument(
        "--campaign", action="append", default=None, metavar="NAME",
        help="campaign to verify (repeatable); 'all' runs the full "
        "catalogue (default when no --example is given)",
    )
    parser.add_argument(
        "--example", choices=EXAMPLES, default=None,
        help="verify the quickstart/Figure-1 example instead",
    )
    parser.add_argument("--seed", type=int, default=42, help="root seed")
    parser.add_argument(
        "--trials", type=int, default=3, help="trials per campaign",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids, families (hb, tpc, dl) or "
        "monitor names to evaluate; everything else is skipped",
    )
    parser.add_argument(
        "--suppress", default=None, metavar="RULES",
        help="comma-separated rule ids to drop from the report "
        "(the dynamic analogue of '# repro: noqa')",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the canonical JSON report to PATH",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every monitor rule id with its summary and exit",
    )
    return parser


def list_rules() -> str:
    lines = []
    for monitor in all_monitors():
        lines.append(f"[{monitor.name}]")
        for rule in monitor.rules:
            lines.append(
                f"  {rule.id:<28} {rule.severity.value:<8} {rule.summary}"
            )
    return "\n".join(lines)


def _known_selectors() -> set[str]:
    known: set[str] = set()
    for monitor in all_monitors():
        known.add(monitor.name)
        for rule in monitor.rules:
            known.add(rule.id)
            known.add(rule.id.split("-", 1)[0])
    return known


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0

    select = args.select.split(",") if args.select else None
    if select is not None:
        unknown = sorted(
            token.strip()
            for token in select
            if token.strip() not in _known_selectors()
        )
        if unknown:
            parser.error(
                f"--select: unknown rule/family/monitor "
                f"{', '.join(unknown)} (see --list-rules)"
            )
    suppress = args.suppress.split(",") if args.suppress else None

    try:
        if args.example is not None:
            report = verify_example(
                args.example, seed=args.seed,
                select=select, suppress=suppress,
            )
        else:
            campaigns = args.campaign or ["all"]
            names = None if "all" in campaigns else campaigns
            report = verify_campaigns(
                seed=args.seed, trials=args.trials, names=names,
                select=select, suppress=suppress,
            )
    except ReproError as exc:
        parser.error(str(exc))

    rendered = (
        render_verification_json(report)
        if args.format == "json"
        else render_verification_text(report)
    )
    print(rendered, end="" if rendered.endswith("\n") else "\n")
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_verification_json(report), encoding="utf-8")
    return 0 if report["findings_total"] == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
