"""Protocol monitors over the happens-before event log.

Each :class:`Monitor` is the dynamic analogue of a static
:class:`~repro.analysis.framework.Checker`: it declares
:class:`~repro.analysis.framework.Rule` s and yields
:class:`~repro.analysis.framework.Finding` s, so monitor output flows
through the same ``--select`` semantics and reporters as
``repro.analysis``.  A dynamic finding locates the violation in the
*run* rather than in source: ``file`` is the run id, ``line`` the
violating event's sequence number, and ``witness`` a connected
happens-before chain ending at that event.

Three monitors cover the co-allocation protocol of the paper:

* :class:`RaceMonitor` (``hb-*``) — conflicting accesses to shared
  protocol state from different loci of control with no happens-before
  edge between them;
* :class:`TwoPhaseCommitMonitor` (``tpc-*``) — the two-phase-commit
  safety invariants of §3.2: no barrier release before commit, atomic
  (GRAB) all-or-nothing-ness, abort blame, every delivered check-in
  eventually answered, duplicate-delivery idempotence;
* :class:`EventQueueMonitor` (``dl-*``) — clock monotonicity and
  lost-wakeup/deadlock detection (a commit that never settles even
  though the event queue ran dry).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.analysis.framework import (
    Finding,
    Rule,
    Severity,
    normalize_select,
    rule_selected,
)
from repro.verify.events import ACCESS, DELIVER, EVENT, SEND, EventLog, ProtoEvent, RunContext

#: Barrier verdict message kinds (mirrors repro.core.barrier; kept as
#: literals so the monitor layer never imports protocol modules).
_CHECKIN = "duroc.checkin"
_RELEASE = "duroc.release"
_ABORT = "duroc.abort"


class Monitor:
    """Base class: subclasses declare rules and check one run's log."""

    #: Family name, usable with ``--select`` (like a checker name).
    name: str = "monitor"
    rules: tuple[Rule, ...] = ()

    def rule(self, rule_id: str) -> Rule:
        for rule in self.rules:
            if rule.id == rule_id:
                return rule
        raise KeyError(f"{self.name}: unknown rule {rule_id!r}")

    def finding(
        self,
        ctx: RunContext,
        log: EventLog,
        event: ProtoEvent,
        rule_id: str,
        message: str,
    ) -> Finding:
        rule = self.rule(rule_id)
        return Finding(
            file=ctx.run_id,
            line=event.seq,
            col=1,
            rule=rule.id,
            severity=rule.severity,
            message=message,
            witness=log.render_witness(event),
        )

    def check(self, log: EventLog, ctx: RunContext) -> Iterator[Finding]:
        """Yield findings for one run."""
        raise NotImplementedError


class RaceMonitor(Monitor):
    """Happens-before race detection on shared protocol state."""

    name = "race"
    rules = (
        Rule(
            "hb-race",
            "conflicting accesses to shared state with no happens-before edge",
        ),
    )

    def check(self, log: EventLog, ctx: RunContext) -> Iterator[Finding]:
        by_resource: dict[str, list[ProtoEvent]] = {}
        for event in log.accesses():
            by_resource.setdefault(event.name, []).append(event)
        for resource, accesses in sorted(by_resource.items()):
            for i, first in enumerate(accesses):
                for second in accesses[i + 1:]:
                    if first.node == second.node:
                        continue  # same locus: program-ordered
                    mode_a = first.attrs.get("mode")
                    mode_b = second.attrs.get("mode")
                    if mode_a != "w" and mode_b != "w":
                        continue  # read/read never conflicts
                    if not log.concurrent(first, second):
                        continue
                    yield self.finding(
                        ctx, log, second, "hb-race",
                        f"{resource}: {mode_b}-access on {second.node} (#"
                        f"{second.seq}) races {mode_a}-access on "
                        f"{first.node} (#{first.seq}); no happens-before "
                        "edge orders them",
                    )


class TwoPhaseCommitMonitor(Monitor):
    """Safety invariants of the two-phase-commit barrier (§3.2)."""

    name = "tpc"
    rules = (
        Rule(
            "tpc-release-before-commit",
            "barrier released before the request was committed",
        ),
        Rule(
            "tpc-atomic-partial-commit",
            "atomic (GRAB) request released after a subjob had failed",
        ),
        Rule(
            "tpc-atomic-orphan",
            "atomic (GRAB) abort left a submitted subjob uncancelled",
        ),
        Rule(
            "tpc-abort-on-optional",
            "request aborted blaming an optional/interactive subjob failure",
        ),
        Rule(
            "tpc-unanswered-checkin",
            "delivered check-in never answered with a release or abort",
        ),
        Rule(
            "tpc-dup-checkin",
            "duplicate check-in delivery double-counted at the barrier",
        ),
    )

    def check(self, log: EventLog, ctx: RunContext) -> Iterator[Finding]:
        yield from self._release_before_commit(log, ctx)
        yield from self._atomic(log, ctx)
        yield from self._abort_blame(log, ctx)
        if ctx.queue_exhausted:
            yield from self._unanswered_checkins(log, ctx)
        yield from self._dup_checkins(log, ctx)

    # -- tpc-release-before-commit ------------------------------------------

    def _release_before_commit(
        self, log: EventLog, ctx: RunContext
    ) -> Iterator[Finding]:
        commits_by_node: dict[str, list[ProtoEvent]] = {}
        for event in log.named("duroc.commit", kind=EVENT):
            commits_by_node.setdefault(event.node, []).append(event)
        for release in log.accesses():
            if release.attrs.get("op") != "release":
                continue
            committed = any(
                log.happens_before(commit, release)
                for commit in commits_by_node.get(release.node, [])
            )
            if not committed:
                yield self.finding(
                    ctx, log, release, "tpc-release-before-commit",
                    f"{release.name} released on {release.node} with no "
                    "commit happening-before it: phase two began before "
                    "phase one was closed",
                )

    # -- tpc-atomic-* --------------------------------------------------------

    def _atomic(self, log: EventLog, ctx: RunContext) -> Iterator[Finding]:
        atomic_nodes = {e.node for e in log.named("duroc.atomic", kind=EVENT)}
        for node in sorted(atomic_nodes):
            released = [
                e
                for e in log.named("duroc.state", kind=EVENT, state="released")
                if e.node == node
            ]
            failures = [
                e for e in log.named("duroc.slot.failed", kind=EVENT)
                if e.node == node
            ]
            for rel in released:
                for failure in failures:
                    if log.happens_before(failure, rel):
                        yield self.finding(
                            ctx, log, rel, "tpc-atomic-partial-commit",
                            f"atomic request on {node} released although "
                            f"subjob {failure.attrs.get('slot')} had failed "
                            f"(#{failure.seq}): GRAB must be all-or-nothing",
                        )
            yield from self._atomic_orphans(log, ctx, node)

    def _atomic_orphans(
        self, log: EventLog, ctx: RunContext, node: str
    ) -> Iterator[Finding]:
        aborts = [
            e for e in log.named("duroc.abort.decision", kind=EVENT)
            if e.node == node
        ]
        if not aborts:
            return
        submitted = [
            e for e in log.named("duroc.slot.state", kind=EVENT, state="submitted")
            if e.node == node
        ]
        cancelled = {
            e.attrs.get("slot")
            for e in log.named("duroc.cancel", kind=EVENT)
            if e.node == node
        }
        finished = {
            e.attrs.get("slot")
            for e in log.named("duroc.gram", kind=EVENT, terminal=True)
            if e.node == node
        }
        for sub in submitted:
            slot = sub.attrs.get("slot")
            if slot not in cancelled and slot not in finished:
                yield self.finding(
                    ctx, log, aborts[0], "tpc-atomic-orphan",
                    f"atomic request on {node} aborted but submitted "
                    f"subjob {slot} (#{sub.seq}) was never cancelled: "
                    "resources leak past the failed transaction",
                )

    # -- tpc-abort-on-optional ----------------------------------------------

    def _abort_blame(self, log: EventLog, ctx: RunContext) -> Iterator[Finding]:
        for decision in log.named("duroc.abort.decision", kind=EVENT):
            if decision.attrs.get("origin") != "subjob-failure":
                continue
            blame = decision.attrs.get("blame_start_type")
            if blame in ("optional", "interactive"):
                yield self.finding(
                    ctx, log, decision, "tpc-abort-on-optional",
                    f"request on {decision.node} aborted blaming a {blame} "
                    f"subjob ({decision.attrs.get('subjob')}): only required "
                    "subjob failures may terminate the computation",
                )

    # -- tpc-unanswered-checkin -----------------------------------------------

    def _unanswered_checkins(
        self, log: EventLog, ctx: RunContext
    ) -> Iterator[Finding]:
        answered: set[str] = set()
        for event in log.of_kind(SEND):
            if event.name in (_RELEASE, _ABORT):
                dst = event.attrs.get("dst")
                if isinstance(dst, str):
                    answered.add(dst)
        flagged: set[str] = set()
        for deliver in log.of_kind(DELIVER):
            if deliver.name != _CHECKIN:
                continue
            endpoint = deliver.attrs.get("endpoint")
            if not isinstance(endpoint, str) or endpoint in answered:
                continue
            if endpoint in flagged:
                continue  # one finding per starving process
            flagged.add(endpoint)
            yield self.finding(
                ctx, log, deliver, "tpc-unanswered-checkin",
                f"check-in from {endpoint} delivered (#{deliver.seq}) but "
                "no release or abort was ever sent back; the process "
                "blocks at the barrier forever",
            )

    # -- tpc-dup-checkin -------------------------------------------------------

    def _dup_checkins(self, log: EventLog, ctx: RunContext) -> Iterator[Finding]:
        applied: dict[tuple[str, str, object], ProtoEvent] = {}
        for access in log.accesses():
            if access.attrs.get("op") != "record":
                continue
            if not access.attrs.get("applied"):
                continue
            key = (access.node, access.name, access.attrs.get("rank"))
            first = applied.get(key)
            if first is None:
                applied[key] = access
                continue
            yield self.finding(
                ctx, log, access, "tpc-dup-checkin",
                f"{access.name}: rank {access.attrs.get('rank')} check-in "
                f"applied twice (#{first.seq} then #{access.seq}); "
                "duplicate delivery must be idempotent",
            )


class EventQueueMonitor(Monitor):
    """Clock sanity and deadlock/lost-wakeup detection."""

    name = "deadlock"
    rules = (
        Rule(
            "dl-clock-regression",
            "simulated time ran backwards between observed events",
        ),
        Rule(
            "dl-commit-stalled",
            "commit never settled although the event queue ran dry",
        ),
        Rule(
            "dl-barrier-abandoned",
            "a process gave up on the barrier after exhausting resends",
            severity=Severity.WARNING,
        ),
    )

    #: Request states that settle a pending commit.
    _SETTLED = ("released", "aborted", "terminated")

    def check(self, log: EventLog, ctx: RunContext) -> Iterator[Finding]:
        yield from self._clock_regressions(log, ctx)
        if ctx.queue_exhausted:
            yield from self._stalled_commits(log, ctx)
        for event in log.named("barrier.abandoned", kind=EVENT):
            yield self.finding(
                ctx, log, event, "dl-barrier-abandoned",
                f"process rank {event.attrs.get('rank')} (slot "
                f"{event.attrs.get('slot')}) abandoned the barrier after "
                "exhausting check-in resends: the co-allocator never "
                "answered",
            )

    def _clock_regressions(
        self, log: EventLog, ctx: RunContext
    ) -> Iterator[Finding]:
        last = 0.0
        for event in log:
            if event.time < last:
                yield self.finding(
                    ctx, log, event, "dl-clock-regression",
                    f"event #{event.seq} at t={event.time:g} observed after "
                    f"t={last:g}: simulated time must be monotone",
                )
            last = max(last, event.time)

    def _stalled_commits(
        self, log: EventLog, ctx: RunContext
    ) -> Iterator[Finding]:
        for committing in log.named("duroc.state", kind=EVENT, state="committing"):
            settled = any(
                later.node == committing.node
                and later.seq > committing.seq
                and later.attrs.get("state") in self._SETTLED
                for later in log.named("duroc.state", kind=EVENT)
            )
            if not settled:
                yield self.finding(
                    ctx, log, committing, "dl-commit-stalled",
                    f"request on {committing.node} entered COMMITTING "
                    f"(#{committing.seq}) and never released or aborted, "
                    "yet the event queue ran dry: a wakeup was lost",
                )


def all_monitors() -> list[Monitor]:
    """The full monitor suite, in deterministic order."""
    return [RaceMonitor(), TwoPhaseCommitMonitor(), EventQueueMonitor()]


def evaluate(
    monitors: Iterable[Monitor],
    log: EventLog,
    ctx: RunContext,
    select: Optional[Iterable[str]] = None,
    suppress: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Run monitors over one run's log; returns sorted unique findings.

    ``select`` follows the static analyzer's semantics (rule id, family
    prefix, or monitor name); ``suppress`` drops exact rule ids — the
    dynamic analogue of ``# repro: noqa``.
    """
    selected = normalize_select(select)
    suppressed = {s.strip().lower() for s in suppress or () if s.strip()}
    findings: list[Finding] = []
    for monitor in monitors:
        for finding in monitor.check(log, ctx):
            if not rule_selected(finding.rule, monitor.name, selected):
                continue
            if finding.rule.lower() in suppressed:
                continue
            findings.append(finding)
    return sorted(set(findings))
