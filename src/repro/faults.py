"""The unified, declarative fault-injection facade.

One vocabulary of :class:`FaultSpec` dataclasses —
:class:`HostCrash`, :class:`Overload`, :class:`Partition`,
:class:`MessageLoss`, :class:`SlowLink` — and one entry point,
:func:`schedule`, that installs any mix of them against a built
:class:`~repro.gridenv.Grid` (or a bare :class:`~repro.net.network.Network`
/ :class:`~repro.machine.host.Machine` in unit tests).  Specs are plain
frozen dataclasses: hashable, comparable, serializable via
:meth:`FaultSpec.describe` — the form the fault-campaign harness
(:mod:`repro.resilience.campaign`) stores in its reports.

Stochastic faults (:class:`MessageLoss`) draw from the grid's seeded
RNG registry, so a faulted run is exactly reproducible from its seed.

This module is the only fault-injection entry point: the per-layer
helpers that predated it (``repro.machine.faults.crash_at``,
``repro.net.faults.FaultPlan``, ...) completed their deprecation
cycle and have been removed.

>>> from repro.faults import HostCrash, MessageLoss, schedule
>>> grid = GridBuilder(seed=7).add_machine("RM1", nodes=8).with_faults(
...     HostCrash("RM1", at=10.0, duration=5.0),
...     MessageLoss(probability=0.1, at=0.0),
... ).build()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Optional, Sequence

import numpy as np

from repro.errors import FaultSpecError
from repro.simcore.probe import emit

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.host import Machine
    from repro.net.message import Message
    from repro.net.network import Network
    from repro.simcore.environment import Environment
    from repro.simcore.process import Process


@dataclass(frozen=True)
class FaultSpec:
    """Base class: one declarative fault with an onset time.

    ``at`` is absolute simulated time; ``duration=None`` (where a
    subclass has one) means the fault persists forever.
    """

    at: float = 0.0

    def validate(self, target: "_Target") -> None:
        """Raise :class:`~repro.errors.FaultSpecError` if inapplicable."""
        if self.at < 0:
            raise FaultSpecError(f"{type(self).__name__}.at must be >= 0")

    def describe(self) -> dict[str, Any]:
        """A JSON-able, deterministic description of this fault."""
        out: dict[str, Any] = {"fault": type(self).__name__}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if isinstance(value, tuple):
                value = [list(g) if isinstance(g, tuple) else g for g in value]
            elif isinstance(value, frozenset):
                value = sorted(value)
            out[name] = value
        return out

    def _install(self, target: "_Target") -> "Process":
        raise NotImplementedError


@dataclass(frozen=True)
class HostCrash(FaultSpec):
    """Crash ``host`` at ``at``; restore after ``duration`` if given.

    A grid machine crash kills its processes and takes the host off the
    network (the §2 "unavailable due to a system crash" mode); a bare
    network host (e.g. the client workstation) just goes dark.
    """

    host: str = ""
    duration: Optional[float] = None

    def __init__(
        self, host: str, at: float = 0.0, duration: Optional[float] = None
    ) -> None:
        object.__setattr__(self, "host", host)
        object.__setattr__(self, "at", at)
        object.__setattr__(self, "duration", duration)

    def validate(self, target: "_Target") -> None:
        super().validate(target)
        target.require_host(self.host)

    def _install(self, target: "_Target") -> "Process":
        machine = target.machines.get(self.host)
        network = target.network
        if machine is not None:
            apply, revert = machine.crash, machine.restore
        else:
            def apply() -> None:
                network.crash_host(self.host)

            def revert() -> None:
                network.restore_host(self.host)
        return target.spawn(
            _window(target.env, self.at, self.duration, apply, revert, self),
            f"fault.crash:{self.host}",
        )


@dataclass(frozen=True)
class Overload(FaultSpec):
    """Multiply ``host``'s load factor by setting it to ``factor``.

    The §2 "overloaded with other work" mode: processes start so slowly
    they miss the startup deadline.  ``duration=None`` leaves the
    machine overloaded forever.
    """

    host: str = ""
    factor: float = 10.0
    duration: Optional[float] = None

    def __init__(
        self,
        host: str,
        factor: float = 10.0,
        at: float = 0.0,
        duration: Optional[float] = None,
    ) -> None:
        object.__setattr__(self, "host", host)
        object.__setattr__(self, "factor", factor)
        object.__setattr__(self, "at", at)
        object.__setattr__(self, "duration", duration)

    def validate(self, target: "_Target") -> None:
        super().validate(target)
        if self.factor <= 0:
            raise FaultSpecError(f"Overload.factor must be positive, got {self.factor!r}")
        if self.host not in target.machines:
            raise FaultSpecError(
                f"Overload target {self.host!r} is not a machine on this grid"
            )

    def _install(self, target: "_Target") -> "Process":
        machine = target.machines[self.host]
        state: dict[str, float] = {}

        def apply() -> None:
            state["previous"] = machine.load_factor
            machine.overload(self.factor)

        def revert() -> None:
            machine.load_factor = state.get("previous", 1.0)

        return target.spawn(
            _window(target.env, self.at, self.duration, apply, revert, self),
            f"fault.load:{self.host}",
        )


@dataclass(frozen=True)
class Partition(FaultSpec):
    """Split the network into isolated ``groups`` during the window.

    Hosts not named in any group form an implicit extra group.  The
    partition heals after ``duration`` (None = never).
    """

    groups: tuple[tuple[str, ...], ...] = ()
    duration: Optional[float] = None

    def __init__(
        self,
        groups: Sequence[Sequence[str]],
        at: float = 0.0,
        duration: Optional[float] = None,
    ) -> None:
        object.__setattr__(
            self, "groups", tuple(tuple(g) for g in groups)
        )
        object.__setattr__(self, "at", at)
        object.__setattr__(self, "duration", duration)

    def validate(self, target: "_Target") -> None:
        super().validate(target)
        if not self.groups:
            raise FaultSpecError("Partition needs at least one group")
        for group in self.groups:
            for host in group:
                target.require_host(host)

    def _install(self, target: "_Target") -> "Process":
        network = target.network
        return target.spawn(
            _window(
                target.env,
                self.at,
                self.duration,
                lambda: network.partition(self.groups),
                network.heal_partition,
                self,
            ),
            "fault.partition",
        )


@dataclass(frozen=True)
class MessageLoss(FaultSpec):
    """Bernoulli message loss at ``probability`` during the window.

    ``kinds`` restricts losses to the given message kinds (None = all).
    Draws come from the target's seeded RNG registry (stream
    ``"faults.loss"``) or an explicit generator passed to
    :func:`schedule`, keeping runs deterministic.
    """

    probability: float = 0.1
    duration: Optional[float] = None
    kinds: Optional[frozenset[str]] = None

    def __init__(
        self,
        probability: float,
        at: float = 0.0,
        duration: Optional[float] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        object.__setattr__(self, "probability", probability)
        object.__setattr__(self, "at", at)
        object.__setattr__(self, "duration", duration)
        object.__setattr__(
            self, "kinds", frozenset(kinds) if kinds is not None else None
        )

    def validate(self, target: "_Target") -> None:
        super().validate(target)
        if not 0.0 <= self.probability <= 1.0:
            raise FaultSpecError(
                f"MessageLoss.probability {self.probability!r} outside [0, 1]"
            )
        if target.rng is None:
            raise FaultSpecError(
                "MessageLoss needs a seeded rng: schedule against a Grid "
                "or pass rng= to schedule()"
            )

    def rule(self, rng: np.random.Generator):
        """The drop predicate this spec stands for (exposed for shims)."""

        def drop(message: "Message") -> bool:
            if self.kinds is not None and message.kind not in self.kinds:
                return False
            return bool(rng.random() < self.probability)

        return drop

    def _install(self, target: "_Target") -> "Process":
        network = target.network
        rng = target.rng
        assert rng is not None  # validate() enforced it
        rule = self.rule(rng)
        return target.spawn(
            _window(
                target.env,
                self.at,
                self.duration,
                lambda: network.add_drop_rule(rule),
                lambda: network.remove_drop_rule(rule),
                self,
            ),
            "fault.loss",
        )


@dataclass(frozen=True)
class SlowLink(FaultSpec):
    """Degrade the ``src``↔``dst`` link to ``latency`` seconds one-way.

    The previous per-pair setting (or the base latency) is restored
    after ``duration`` (None = degraded forever).
    """

    src: str = ""
    dst: str = ""
    latency: float = 0.1
    duration: Optional[float] = None

    def __init__(
        self,
        src: str,
        dst: str,
        latency: float,
        at: float = 0.0,
        duration: Optional[float] = None,
    ) -> None:
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)
        object.__setattr__(self, "latency", latency)
        object.__setattr__(self, "at", at)
        object.__setattr__(self, "duration", duration)

    def validate(self, target: "_Target") -> None:
        super().validate(target)
        if self.latency < 0:
            raise FaultSpecError(f"SlowLink.latency must be >= 0, got {self.latency!r}")
        target.require_host(self.src)
        target.require_host(self.dst)

    def _install(self, target: "_Target") -> "Process":
        model = target.network.latency_model
        state: dict[str, Optional[float]] = {}

        def apply() -> None:
            state["previous"] = model.pair_latency(self.src, self.dst)
            model.set_latency(self.src, self.dst, self.latency)

        def revert() -> None:
            previous = state.get("previous")
            if previous is None:
                model.clear_latency(self.src, self.dst)
            else:
                model.set_latency(self.src, self.dst, previous)

        return target.spawn(
            _window(target.env, self.at, self.duration, apply, revert, self),
            f"fault.slowlink:{self.src}-{self.dst}",
        )


# ---------------------------------------------------------------------------
# Installation machinery
# ---------------------------------------------------------------------------


def _window(
    env: "Environment",
    at: float,
    duration: Optional[float],
    apply,
    revert,
    spec: "Optional[FaultSpec]" = None,
):
    """Driver process: apply the fault at ``at``, revert after ``duration``.

    Activation and reversal are reported to the installed probe
    (``fault.apply`` / ``fault.revert`` on the ``faults`` locus) so
    observers — the verification recorder, the flight recorder's
    :class:`~repro.obs.flightrec.OnFault` trigger — see exactly when
    each declared fault took effect.  Emission is observation-only and
    changes nothing without a probe.
    """
    if at > env.now:
        yield env.timeout(at - env.now)
    apply()
    if spec is not None:
        emit(env, "faults", "fault.apply", **spec.describe())
    if duration is not None:
        yield env.timeout(duration)
        revert()
        if spec is not None:
            emit(env, "faults", "fault.revert", **spec.describe())


@dataclass
class _Target:
    """Resolved injection surface: where faults land."""

    env: "Environment"
    network: "Network"
    machines: "dict[str, Machine]" = field(default_factory=dict)
    rng: Optional[np.random.Generator] = None

    def require_host(self, host: str) -> None:
        if not self.network.has_host(host):
            raise FaultSpecError(f"unknown host {host!r}")

    def spawn(self, generator, name: str) -> "Process":
        return self.env.process(generator, name=name)


def _resolve(
    target: Any, rng: Optional[np.random.Generator]
) -> _Target:
    from repro.machine.host import Machine
    from repro.net.network import Network

    if hasattr(target, "sites") and hasattr(target, "network"):  # a Grid
        machines = {name: site.machine for name, site in target.sites.items()}
        if rng is None and hasattr(target, "rngs"):
            rng = target.rngs.stream("faults.loss")
        return _Target(target.env, target.network, machines, rng)
    if isinstance(target, Network):
        return _Target(target.env, target, {}, rng)
    if isinstance(target, Machine):
        return _Target(target.env, target.network, {target.name: target}, rng)
    raise FaultSpecError(
        f"cannot inject faults into {type(target).__name__!r}: "
        "expected a Grid, Network, or Machine"
    )


def schedule(
    env: "Environment",
    target: Any,
    specs: Iterable[FaultSpec],
    rng: Optional[np.random.Generator] = None,
) -> "list[Process]":
    """Validate and install ``specs`` against ``target``.

    ``target`` is a built :class:`~repro.gridenv.Grid` (the normal
    case), a bare :class:`~repro.net.network.Network`, or a single
    :class:`~repro.machine.host.Machine`.  All specs are validated
    before any is installed, so a bad campaign fails atomically.
    Returns the spawned driver processes.
    """
    resolved = _resolve(target, rng)
    if resolved.env is not env:
        raise FaultSpecError("target belongs to a different environment")
    spec_list = list(specs)
    for spec in spec_list:
        if not isinstance(spec, FaultSpec):
            raise FaultSpecError(f"not a FaultSpec: {spec!r}")
        spec.validate(resolved)
    return [spec._install(resolved) for spec in spec_list]
