"""Compute resource model: machines, processes, fault injection."""

from repro.machine.faults import FailureModel
from repro.machine.host import Machine, ProcessContext, ProcessRecord, Program

__all__ = [
    "FailureModel",
    "Machine",
    "ProcessContext",
    "ProcessRecord",
    "Program",
]
