"""Machine-level fault models.

:class:`FailureModel` (Bernoulli per-machine faults for scenario
sweeps) lives here.  Imperative, time-targeted faults — crashes,
overload windows, partitions — go through the unified declarative
facade instead: :mod:`repro.faults` specs installed with
:func:`repro.faults.schedule` or ``GridBuilder.with_faults``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.machine.host import Machine


@dataclass(frozen=True)
class FailureModel:
    """Stochastic per-machine failure behaviour for scenario sweeps.

    ``p_unavailable``  — probability a machine is already down when the
    co-allocation request reaches it (the paper's "system crash" case).

    ``p_slow`` / ``slow_factor`` — probability a machine is overloaded,
    and by how much startup is inflated (the "five minutes late at the
    barrier" case).

    ``p_start_failure`` — probability an individual application process
    reports unsuccessful startup after its local checks (the paper's
    application-defined failure: bad libraries, no disk space, ...).
    """

    p_unavailable: float = 0.0
    p_slow: float = 0.0
    slow_factor: float = 10.0
    p_start_failure: float = 0.0

    def __post_init__(self) -> None:
        for name in ("p_unavailable", "p_slow", "p_start_failure"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p!r} outside [0, 1]")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1")

    def apply(
        self,
        machines: Sequence[Machine],
        rng: np.random.Generator,
    ) -> dict[str, str]:
        """Draw and install faults; returns {machine: fault kind}."""
        outcome: dict[str, str] = {}
        for machine in machines:
            draw = rng.random()
            if draw < self.p_unavailable:
                machine.crash()
                outcome[machine.name] = "crashed"
            elif draw < self.p_unavailable + self.p_slow:
                machine.overload(self.slow_factor)
                outcome[machine.name] = "slow"
            else:
                outcome[machine.name] = "ok"
        return outcome
