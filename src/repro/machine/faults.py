"""Machine-level fault injection.

The paper's motivating scenario (§2) features two distinct failure
modes this module reproduces on demand:

* a machine "unavailable due to a system crash" — :func:`crash_at`;
* a machine "overloaded with other work" whose processes start so
  slowly they miss the startup deadline — :func:`overload_during`.

Plus Bernoulli models used by the application-scale experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.machine.host import Machine

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.environment import Environment


def crash_at(
    machine: Machine, at: float, duration: Optional[float] = None
) -> None:
    """Schedule a crash of ``machine`` at time ``at`` (restore after
    ``duration`` if given)."""

    def driver(env):
        if at > env.now:
            yield env.timeout(at - env.now)
        machine.crash()
        if duration is not None:
            yield env.timeout(duration)
            machine.restore()

    machine.env.process(driver(machine.env), name=f"fault.crash:{machine.name}")


def overload_during(
    machine: Machine, at: float, duration: float, factor: float
) -> None:
    """Schedule a load spike on ``machine`` during [at, at+duration)."""

    def driver(env):
        if at > env.now:
            yield env.timeout(at - env.now)
        previous = machine.load_factor
        machine.overload(factor)
        yield env.timeout(duration)
        machine.load_factor = previous

    machine.env.process(driver(machine.env), name=f"fault.load:{machine.name}")


@dataclass(frozen=True)
class FailureModel:
    """Stochastic per-machine failure behaviour for scenario sweeps.

    ``p_unavailable``  — probability a machine is already down when the
    co-allocation request reaches it (the paper's "system crash" case).

    ``p_slow`` / ``slow_factor`` — probability a machine is overloaded,
    and by how much startup is inflated (the "five minutes late at the
    barrier" case).

    ``p_start_failure`` — probability an individual application process
    reports unsuccessful startup after its local checks (the paper's
    application-defined failure: bad libraries, no disk space, ...).
    """

    p_unavailable: float = 0.0
    p_slow: float = 0.0
    slow_factor: float = 10.0
    p_start_failure: float = 0.0

    def __post_init__(self) -> None:
        for name in ("p_unavailable", "p_slow", "p_start_failure"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p!r} outside [0, 1]")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1")

    def apply(
        self,
        machines: Sequence[Machine],
        rng: np.random.Generator,
    ) -> dict[str, str]:
        """Draw and install faults; returns {machine: fault kind}."""
        outcome: dict[str, str] = {}
        for machine in machines:
            draw = rng.random()
            if draw < self.p_unavailable:
                machine.crash()
                outcome[machine.name] = "crashed"
            elif draw < self.p_unavailable + self.p_slow:
                machine.overload(self.slow_factor)
                outcome[machine.name] = "slow"
            else:
                outcome[machine.name] = "ok"
        return outcome
