"""Compute resource model.

A :class:`Machine` is one co-allocatable resource: a named host with a
fixed node (processor) count, a process table, and a load factor that
scales application startup work (the paper's "faulty" fifth system was
exactly a machine "overloaded with other work" whose startup never
finished in time).

Machines do not schedule themselves — a
:class:`~repro.schedulers.base.LocalScheduler` owns node accounting —
but they own process *execution*: spawning program instances, killing
them, and dying wholesale.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.errors import SimulationError
from repro.net.address import Endpoint
from repro.net.network import Network
from repro.net.transport import Port
from repro.simcore.process import Process
from repro.simcore.tracing import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.environment import Environment

_pids = itertools.count(1000)

#: A program is a callable taking a ProcessContext and returning a
#: generator to be driven as a simulated process.
Program = Callable[["ProcessContext"], Generator]


@dataclass
class ProcessContext:
    """Everything a spawned program instance can see.

    ``params`` plays the role of environment variables: the GRAM job
    manager injects job/subjob identity here, exactly as DUROC passes
    subjob context to real processes via the environment.
    """

    env: "Environment"
    machine: "Machine"
    pid: int
    rank: int
    count: int
    executable: str
    arguments: tuple[Any, ...] = ()
    params: dict[str, Any] = field(default_factory=dict)

    def port(self, label: str) -> Port:
        """Bind a fresh port on this machine for this process."""
        return Port(
            self.machine.network,
            Endpoint(self.machine.name, f"{label}.pid{self.pid}"),
        )

    @property
    def now(self) -> float:
        return self.env.now

    @property
    def tracer(self) -> Tracer:
        """The machine's tracer (a no-op tracer when unset)."""
        return self.machine.tracer if self.machine.tracer is not None else NULL_TRACER


@dataclass
class ProcessRecord:
    """Bookkeeping for one running program instance."""

    pid: int
    executable: str
    process: Process
    context: ProcessContext
    started_at: float


class Machine:
    """A host with processors, a process table, and failure modes."""

    def __init__(
        self,
        env: "Environment",
        network: Network,
        name: str,
        nodes: int,
        speed: float = 1.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if nodes <= 0:
            raise SimulationError(f"machine needs at least one node, got {nodes}")
        self.env = env
        self.network = network
        self.name = name
        self.nodes = int(nodes)
        self.speed = float(speed)
        self.tracer = tracer
        #: Multiplies startup work; >1 models an overloaded system.
        self.load_factor = 1.0
        self.crashed = False
        self.processes: dict[int, ProcessRecord] = {}
        network.add_host(name)

    # -- execution ------------------------------------------------------------

    def spawn(
        self,
        program: Program,
        executable: str,
        rank: int,
        count: int,
        arguments: tuple[Any, ...] = (),
        params: Optional[dict[str, Any]] = None,
    ) -> ProcessRecord:
        """Start one instance of ``program`` on this machine."""
        if self.crashed:
            raise SimulationError(f"machine {self.name!r} is down")
        pid = next(_pids)
        context = ProcessContext(
            env=self.env,
            machine=self,
            pid=pid,
            rank=rank,
            count=count,
            executable=executable,
            arguments=tuple(arguments),
            params=dict(params or {}),
        )
        process = self.env.process(
            program(context),
            name=f"{self.name}/{executable}[{rank}]",
        )
        process.callbacks.append(lambda event: self._reap(pid, event))
        record = ProcessRecord(
            pid=pid,
            executable=executable,
            process=process,
            context=context,
            started_at=self.env.now,
        )
        self.processes[pid] = record
        return record

    def _reap(self, pid: int, event) -> None:
        """Remove an exited process; swallow kill-induced interrupts."""
        self.processes.pop(pid, None)
        from repro.simcore.process import Interrupt

        if not event._ok and isinstance(event.value, Interrupt):
            # Termination via kill()/crash() is an expected outcome, not
            # a simulation error; other exceptions still surface.
            event.defused = True

    def startup_delay(self, base: float) -> float:
        """Time for ``base`` seconds of startup work under current load."""
        return base * self.load_factor / self.speed

    def kill(self, pid: int) -> bool:
        """Terminate one process (no-op if it already exited)."""
        record = self.processes.pop(pid, None)
        if record is None:
            return False
        if record.process.is_alive:
            record.process.interrupt(cause="killed")
        return True

    # -- failure modes -------------------------------------------------------

    def crash(self) -> None:
        """The machine dies: all processes are killed, the host goes dark."""
        if self.crashed:
            return
        self.crashed = True
        self.network.crash_host(self.name)
        for pid in list(self.processes):
            self.kill(pid)

    def restore(self) -> None:
        """Bring a crashed machine back (with an empty process table)."""
        self.crashed = False
        self.network.restore_host(self.name)

    def overload(self, factor: float) -> None:
        """Set the load factor (1.0 = unloaded)."""
        if factor <= 0:
            raise SimulationError(f"load factor must be positive, got {factor!r}")
        self.load_factor = float(factor)

    @property
    def process_count(self) -> int:
        return len(self.processes)

    def __repr__(self) -> str:
        state = "down" if self.crashed else f"load={self.load_factor:g}"
        return f"<Machine {self.name} nodes={self.nodes} {state}>"
