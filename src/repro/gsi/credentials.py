"""Simulated grid credentials.

Models the pieces of the Grid Security Infrastructure the co-allocation
protocol touches: X.509-style *subjects* signed by a CA, and short-lived
*proxy* credentials delegated from a user credential — DUROC submits all
subjob requests under one user proxy, and each gatekeeper independently
verifies it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_serials = itertools.count(1)


@dataclass(frozen=True)
class Credential:
    """A signed identity assertion.

    ``issuer`` is the CA (or, for proxies, the parent credential's
    subject); ``not_after`` is an absolute simulated-time expiry
    (``None`` = never expires).
    """

    subject: str
    issuer: str
    not_after: Optional[float] = None
    serial: int = field(default_factory=lambda: next(_serials))
    #: Chain depth: 0 = end-entity certificate, >0 = proxy levels.
    depth: int = 0

    def valid_at(self, now: float) -> bool:
        return self.not_after is None or now <= self.not_after

    def delegate(self, lifetime: Optional[float], now: float) -> "Credential":
        """Create a proxy credential signed by this one."""
        not_after = None if lifetime is None else now + lifetime
        if self.not_after is not None:
            not_after = (
                self.not_after if not_after is None else min(not_after, self.not_after)
            )
        return Credential(
            subject=f"{self.subject}/proxy",
            issuer=self.subject,
            not_after=not_after,
            depth=self.depth + 1,
        )

    @property
    def identity(self) -> str:
        """The end-entity identity a proxy chain bottoms out at."""
        return self.subject.split("/proxy")[0]


class CertificateAuthority:
    """Issues end-entity credentials for a trust domain."""

    def __init__(self, name: str = "SimCA") -> None:
        self.name = name
        self._issued: dict[str, Credential] = {}
        self._revoked: set[int] = set()

    def issue(self, subject: str, lifetime: Optional[float] = None,
              now: float = 0.0) -> Credential:
        """Issue (or re-issue) a credential for ``subject``."""
        not_after = None if lifetime is None else now + lifetime
        cred = Credential(subject=subject, issuer=self.name, not_after=not_after)
        self._issued[subject] = cred
        return cred

    def revoke(self, credential: Credential) -> None:
        self._revoked.add(credential.serial)

    def verify(self, credential: Credential, now: float) -> bool:
        """Verify a credential (or proxy chain root) against this CA."""
        if credential.serial in self._revoked:
            return False
        if not credential.valid_at(now):
            return False
        root_subject = credential.identity
        root = self._issued.get(root_subject)
        if root is None:
            return False
        if root.serial in self._revoked:
            return False
        return root.valid_at(now)
