"""Simulated Grid Security Infrastructure: credentials, auth, gridmap."""

from repro.gsi.auth import AuthConfig, AuthSession, accept, initiate
from repro.gsi.credentials import CertificateAuthority, Credential
from repro.gsi.gridmap import GridMap

__all__ = [
    "AuthConfig",
    "AuthSession",
    "CertificateAuthority",
    "Credential",
    "GridMap",
    "accept",
    "initiate",
]
