"""Mutual authentication handshake (simulated GSI).

The paper's Fig. 3 breakdown attributes ~0.5 s of each GRAM request to
"a call to the Grid Security Infrastructure (GSI) library that performs
a mutual authentication of the requestor and target machine", noting
the operations are "computationally intensive and also require network
communication".  We model exactly that: a four-message handshake
(hello → challenge → response → result) plus CPU delays on both sides
whose sum defaults to the paper's 0.5 s.

Client side::

    session = yield from initiate(port, gatekeeper_ep, credential, config)

Server side (inside a service loop that received ``hello``)::

    session = yield from accept(port, hello_msg, ca, gridmap, config, now)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import AuthenticationError, AuthTimeout
from repro.gsi.credentials import CertificateAuthority, Credential
from repro.gsi.gridmap import GridMap
from repro.net.address import Endpoint
from repro.net.message import Message
from repro.net.transport import Port

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.environment import Environment
    from repro.simcore.tracing import TraceContext

_session_ids = itertools.count(1)

#: Handshake message kinds.
HELLO = "gsi.hello"
CHALLENGE = "gsi.challenge"
RESPONSE = "gsi.response"
RESULT = "gsi.result"


@dataclass(frozen=True)
class AuthConfig:
    """Cost parameters of the handshake.

    Defaults reproduce the paper's ~0.5 s authentication contribution
    (0.25 s of public-key work on each side).
    """

    client_cpu: float = 0.25
    server_cpu: float = 0.25

    @property
    def total_cpu(self) -> float:
        return self.client_cpu + self.server_cpu


@dataclass(frozen=True)
class AuthSession:
    """Outcome of a successful mutual authentication."""

    session_id: int
    subject: str
    local_user: str
    peer: Endpoint


def initiate(
    port: Port,
    dst: Endpoint,
    credential: Credential,
    config: Optional[AuthConfig] = None,
    timeout: Optional[float] = None,
    ctx: "Optional[TraceContext]" = None,
) -> Generator:
    """Client half of the handshake; returns an :class:`AuthSession`.

    Raises :class:`AuthenticationError` if the server rejects us or the
    handshake times out.  ``ctx`` rides on the HELLO so the server can
    parent its auth span under the caller's request.
    """
    config = config or AuthConfig()
    env = port.env
    corr = next(_session_ids)
    port.send(dst, HELLO, payload={"credential": credential},
              reply_to=port.endpoint, corr_id=corr, ctx=ctx)

    # The server answers with CHALLENGE, or with an early RESULT on
    # verification/authorization failure.
    challenge = yield from _await(port, env, corr, (CHALLENGE, RESULT), timeout)
    if challenge.kind == RESULT:
        raise AuthenticationError(challenge.payload["reason"])
    # Public-key response computation on the client.
    if config.client_cpu > 0:
        yield env.timeout(config.client_cpu)
    port.send(dst, RESPONSE, payload={"nonce": challenge.payload["nonce"]},
              reply_to=port.endpoint, corr_id=corr, ctx=ctx)

    result = yield from _await(port, env, corr, RESULT, timeout)
    outcome = result.payload
    if not outcome["ok"]:
        raise AuthenticationError(outcome["reason"])
    return AuthSession(
        session_id=corr,
        subject=credential.subject,
        local_user=outcome["local_user"],
        peer=dst,
    )


def _await(port: Port, env, corr: int, kind, timeout: Optional[float]):
    """Wait for a correlated handshake message, with optional deadline.

    ``kind`` may be a single kind string or a tuple of acceptable kinds.
    """
    kinds = (kind,) if isinstance(kind, str) else tuple(kind)
    want = port.recv(filter=lambda m: m.corr_id == corr and m.kind in kinds)
    if timeout is None:
        message = yield want
        return message
    deadline = env.timeout(timeout)
    yield want | deadline
    if not want.triggered:
        want.cancel()
        raise AuthTimeout(
            f"handshake timed out waiting for {kind}", timeout=timeout
        )
    deadline.cancelled = True  # retire the timer
    return want.value


def accept(
    port: Port,
    hello: Message,
    ca: CertificateAuthority,
    gridmap: GridMap,
    config: Optional[AuthConfig] = None,
    timeout: Optional[float] = None,
) -> Generator:
    """Server half of the handshake; returns an :class:`AuthSession`.

    Raises :class:`AuthenticationError` on verification failure or
    unmapped subjects (after informing the client).
    """
    config = config or AuthConfig()
    env = port.env
    credential: Credential = hello.payload["credential"]
    client = hello.reply_to
    corr = hello.corr_id

    # Credential verification is the expensive public-key operation.
    if config.server_cpu > 0:
        yield env.timeout(config.server_cpu)

    if not ca.verify(credential, now=env.now):
        port.send(client, RESULT, corr_id=corr,
                  payload={"ok": False, "reason": "credential verification failed"})
        raise AuthenticationError(
            f"credential for {credential.subject!r} failed verification"
        )
    if not gridmap.authorized(credential.subject):
        port.send(client, RESULT, corr_id=corr,
                  payload={"ok": False,
                           "reason": f"subject {credential.identity!r} not in gridmap"})
        raise AuthenticationError(
            f"subject {credential.identity!r} not authorized"
        )

    nonce = next(_session_ids)
    port.send(client, CHALLENGE, corr_id=corr, payload={"nonce": nonce})

    response = yield from _await(port, env, corr, RESPONSE, timeout)
    if response.payload["nonce"] != nonce:
        port.send(client, RESULT, corr_id=corr,
                  payload={"ok": False, "reason": "bad challenge response"})
        raise AuthenticationError("bad challenge response")

    local_user = gridmap.lookup(credential.subject)
    port.send(client, RESULT, corr_id=corr,
              payload={"ok": True, "local_user": local_user})
    return AuthSession(
        session_id=corr,
        subject=credential.subject,
        local_user=local_user,
        peer=client,
    )
