"""Authorization: mapping grid identities to local accounts.

A *gridmap* is each site's local policy file mapping authenticated grid
subjects to local user names — the authorization step a GRAM gatekeeper
performs after mutual authentication and before ``initgroups``/setuid.
"""

from __future__ import annotations

from repro.errors import AuthorizationError


class GridMap:
    """Per-site subject → local-user mapping."""

    def __init__(self) -> None:
        self._entries: dict[str, str] = {}

    def add(self, subject: str, local_user: str) -> None:
        """Authorize ``subject`` to run as ``local_user``."""
        self._entries[subject] = local_user

    def remove(self, subject: str) -> None:
        self._entries.pop(subject, None)

    def lookup(self, subject: str) -> str:
        """Resolve the local account for ``subject``.

        Raises :class:`AuthorizationError` for unmapped subjects; a
        proxy subject is resolved via its end-entity identity.
        """
        identity = subject.split("/proxy")[0]
        try:
            return self._entries[identity]
        except KeyError:
            raise AuthorizationError(
                f"subject {identity!r} not present in gridmap"
            ) from None

    def authorized(self, subject: str) -> bool:
        return subject.split("/proxy")[0] in self._entries

    def __len__(self) -> int:
        return len(self._entries)
