"""Advance reservations.

§2.2 and §5 of the paper argue that "some form of advance reservation
will ultimately be required" for dependable co-allocation.  This
scheduler extends FCFS with a reservation book: a co-allocator can
``reserve(count, start, duration)`` on each machine, then submit subjob
requests bound to the reservation ids; bound requests are guaranteed
their nodes exactly at the reservation start.

Non-reserved (best-effort) jobs are admitted only when running them
cannot intrude on any committed reservation window — the standard
draining rule.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.errors import ReservationError
from repro.schedulers.base import NodeRequest, PendingAllocation
from repro.schedulers.fcfs import DEFAULT_RUNTIME_GUESS, FcfsScheduler
from repro.schedulers.states import QueuePhase

_resv_ids = itertools.count(1)


@dataclass(frozen=True)
class Reservation:
    """A committed promise of ``count`` nodes during [start, start+duration)."""

    resv_id: str
    count: int
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration

    def overlaps(self, t0: float, t1: float) -> bool:
        return self.start < t1 and t0 < self.end


class ReservationScheduler(FcfsScheduler):
    """FCFS plus an advance-reservation book."""

    policy = "reservation"

    def __init__(self, env, nodes: int, memory=None) -> None:
        super().__init__(env, nodes, memory)
        self._reservations: dict[str, Reservation] = {}

    # -- reservation API ---------------------------------------------------

    def reserve(self, count: int, start: float, duration: float) -> Reservation:
        """Commit a reservation, or raise :class:`ReservationError`.

        Admission control: at every instant of the window, committed
        reservations (including this one) must fit in the machine.
        Best-effort load is not considered — it is drained before the
        window instead.
        """
        if count <= 0 or count > self.nodes:
            raise ReservationError(f"cannot reserve {count} of {self.nodes} nodes")
        if duration <= 0:
            raise ReservationError(f"duration must be positive, got {duration!r}")
        if start < self.env.now:
            raise ReservationError(f"reservation start {start!r} is in the past")
        peak = count + self._max_reserved(start, start + duration)
        if peak > self.nodes:
            raise ReservationError(
                f"window would commit {peak} nodes on a {self.nodes}-node machine"
            )
        resv = Reservation(
            resv_id=f"resv-{next(_resv_ids)}",
            count=count,
            start=start,
            duration=duration,
        )
        self._reservations[resv.resv_id] = resv
        return resv

    def cancel_reservation(self, resv_id: str) -> None:
        if self._reservations.pop(resv_id, None) is None:
            raise ReservationError(f"unknown reservation {resv_id!r}")
        self._schedule_pass()

    def reservations(self) -> list[Reservation]:
        return list(self._reservations.values())

    def _max_reserved(self, t0: float, t1: float, exclude: Optional[str] = None) -> int:
        """Peak committed node count over [t0, t1)."""
        edges = sorted(
            {t0}
            | {r.start for r in self._reservations.values() if t0 < r.start < t1}
        )
        peak = 0
        for t in edges:
            total = sum(
                r.count
                for r in self._reservations.values()
                if r.resv_id != exclude and r.overlaps(t, t1)
                and r.start <= t < r.end
            )
            peak = max(peak, total)
        return peak

    # -- scheduling --------------------------------------------------------

    def _schedule_pass(self) -> None:
        now = self.env.now
        # Expire stale reservations (their window passed unused).
        for resv_id, resv in list(self._reservations.items()):
            if resv.end <= now:
                del self._reservations[resv_id]

        progressed = True
        while progressed:
            progressed = False
            for idx, pending in enumerate(self._queue):
                req = pending.request
                if not self._fits(req):
                    continue
                if req.reservation_id is not None:
                    resv = self._reservations.get(req.reservation_id)
                    if resv is None:
                        # Window expired or canceled: fail the request.
                        del self._queue[idx]
                        pending.transition(QueuePhase.REFUSED)
                        pending.event.fail(
                            ReservationError(
                                f"reservation {req.reservation_id!r} is not active"
                            )
                        )
                        progressed = True
                        break
                    if resv.start <= now:
                        if req.count > resv.count:
                            del self._queue[idx]
                            pending.transition(QueuePhase.REFUSED)
                            pending.event.fail(
                                ReservationError(
                                    f"request for {req.count} nodes exceeds "
                                    f"reservation of {resv.count}"
                                )
                            )
                        else:
                            del self._queue[idx]
                            self._grant(pending)
                        progressed = True
                        break
                    continue  # window not yet open
                else:
                    if self._admissible_best_effort(req):
                        # FCFS among best-effort jobs: only the first
                        # best-effort entry may start.
                        if self._first_best_effort_index() == idx:
                            del self._queue[idx]
                            self._grant(pending)
                            progressed = True
                            break
        self._wake_reservation_timers()

    def _first_best_effort_index(self) -> int:
        for idx, pending in enumerate(self._queue):
            if pending.request.reservation_id is None:
                return idx
        return -1

    def _admissible_best_effort(self, req: NodeRequest) -> bool:
        """Would starting ``req`` now intrude on a reservation window?

        The job holds ``req.count`` nodes during [now, now+runtime); for
        every instant of that span, running it must leave enough nodes
        for all committed reservations (conservatively assuming other
        running best-effort jobs hold their nodes to their own
        estimates).
        """
        now = self.env.now
        runtime = req.max_time or DEFAULT_RUNTIME_GUESS
        horizon = now + runtime
        for resv in self._reservations.values():
            if not resv.overlaps(now, horizon):
                continue
            # Nodes free at resv.start if we admit req now: current free
            # minus req, plus best-effort leases estimated to end first.
            freed = sum(
                lease.count
                for lease in self.leases
                if lease.request.reservation_id is None
                and (lease.granted_at + (lease.request.max_time or DEFAULT_RUNTIME_GUESS))
                <= resv.start
            )
            committed = self._max_reserved(resv.start, resv.end)
            if self.free - req.count + freed < committed:
                return False
        return True

    def _wake_reservation_timers(self) -> None:
        """Ensure a scheduling pass runs at the next window edge.

        Both edges matter: a window *opening* starts reservation-bound
        requests; a window *closing* unblocks best-effort work that was
        drained around it.
        """
        now = self.env.now
        edges = [
            t
            for resv in self._reservations.values()
            for t in (resv.start, resv.end)
            if t > now
        ]
        if not edges:
            return
        next_edge = min(edges)
        if getattr(self, "_timer_at", None) == next_edge:
            return
        self._timer_at = next_edge

        def timer(env):
            yield env.timeout(next_edge - env.now)
            self._timer_at = None
            self._schedule_pass()

        self.env.process(timer(self.env), name="resv-timer")
