"""Queue-wait prediction.

§2.2: a resource manager "can publish information about the current
queue contents and scheduling policy, or publish forecasts (based, for
example, on queue time prediction algorithms [9, 26])".  Two predictors
are provided:

* :class:`PlanBasedPredictor` — replays the scheduler's current state
  (Downey-style structural prediction), delegating to the scheduler's
  own ``estimate_wait``;
* :class:`HistoryPredictor` — Smith/Foster/Taylor-style: the mean wait
  of recent *similar* jobs, where similarity is node count within a
  factor of two.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.schedulers.base import LocalScheduler


class WaitPredictor(Protocol):
    """Common predictor interface used by the information service."""

    def predict(self, count: int, max_time: Optional[float] = None) -> float:
        """Estimated queue wait in seconds for a hypothetical request."""
        ...


class PlanBasedPredictor:
    """Forward-simulates the scheduler's current queue."""

    def __init__(self, scheduler: LocalScheduler) -> None:
        self.scheduler = scheduler

    def predict(self, count: int, max_time: Optional[float] = None) -> float:
        return self.scheduler.estimate_wait(count, max_time)


class HistoryPredictor:
    """Mean wait of recent similar jobs (by node count)."""

    def __init__(
        self,
        scheduler: LocalScheduler,
        window: int = 50,
        similarity_factor: float = 2.0,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        if similarity_factor < 1.0:
            raise ValueError("similarity_factor must be >= 1")
        self.scheduler = scheduler
        self.window = window
        self.similarity_factor = similarity_factor

    def predict(self, count: int, max_time: Optional[float] = None) -> float:
        recent = self.scheduler.history[-self.window:]
        lo = count / self.similarity_factor
        hi = count * self.similarity_factor
        waits = [
            granted - submitted
            for submitted, granted, n in recent
            if lo <= n <= hi
        ]
        if not waits:
            # No similar history: fall back to all recent jobs, then 0.
            waits = [granted - submitted for submitted, granted, _ in recent]
        if not waits:
            return 0.0
        return sum(waits) / len(waits)
