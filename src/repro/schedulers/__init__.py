"""Local scheduling policies: fork, FCFS, EASY backfill, reservations."""

from repro.schedulers.backfill import EasyBackfillScheduler
from repro.schedulers.base import (
    Lease,
    LocalScheduler,
    NodeRequest,
    PendingAllocation,
)
from repro.schedulers.fcfs import FcfsScheduler
from repro.schedulers.fork import ForkScheduler
from repro.schedulers.prediction import (
    HistoryPredictor,
    PlanBasedPredictor,
    WaitPredictor,
)
from repro.schedulers.reservation import Reservation, ReservationScheduler

__all__ = [
    "EasyBackfillScheduler",
    "FcfsScheduler",
    "ForkScheduler",
    "HistoryPredictor",
    "Lease",
    "LocalScheduler",
    "NodeRequest",
    "PendingAllocation",
    "PlanBasedPredictor",
    "Reservation",
    "ReservationScheduler",
    "WaitPredictor",
]
