"""Local scheduler interface.

Every machine is fronted by a *local resource manager* whose scheduling
policy the Grid does not control (paper §2.2): some fork immediately,
some space-share with a queue, some support advance reservations.  This
module defines the request/lease vocabulary shared by all policies.

The conservation invariant every implementation must maintain (and the
property tests verify): at any instant, the sum of node counts of
outstanding leases never exceeds the machine's node count — except for
:class:`~repro.schedulers.fork.ForkScheduler`, which models a
timesharing system with no admission control.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import SchedulerError
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.schedulers.states import QueuePhase, check_queue_transition
from repro.simcore.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.environment import Environment

_req_ids = itertools.count(1)


@dataclass
class NodeRequest:
    """A request for ``count`` nodes.

    ``max_time`` is the user's wall-time estimate (used by backfill and
    wait prediction, and trusted the way batch schedulers trust it:
    not at all for correctness, only for planning).  ``reservation_id``
    attaches the request to a previously granted advance reservation.
    """

    count: int
    max_time: Optional[float] = None
    job_id: str = ""
    reservation_id: Optional[str] = None
    #: Total memory (MB) the job needs from the machine's shared pool —
    #: the §2.1 "processors and memory" heterogeneous resource set that
    #: NQE/PBS-style managers co-allocate within one machine.
    memory: Optional[float] = None
    req_id: int = field(default_factory=lambda: next(_req_ids))
    submitted_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise SchedulerError(f"count must be positive, got {self.count!r}")
        if self.max_time is not None and self.max_time <= 0:
            raise SchedulerError(f"max_time must be positive, got {self.max_time!r}")
        if self.memory is not None and self.memory <= 0:
            raise SchedulerError(f"memory must be positive, got {self.memory!r}")


class Lease:
    """Granted nodes.  Call :meth:`release` exactly once when done."""

    def __init__(self, scheduler: "LocalScheduler", request: NodeRequest) -> None:
        self.scheduler = scheduler
        self.request = request
        self.granted_at = scheduler.env.now
        self.released = False

    @property
    def count(self) -> int:
        return self.request.count

    def release(self) -> None:
        if self.released:
            raise SchedulerError("lease already released")
        self.released = True
        self.scheduler._on_release(self)

    def __repr__(self) -> str:
        state = "released" if self.released else "held"
        return f"<Lease {self.count} nodes job={self.request.job_id!r} {state}>"


class PendingAllocation:
    """Handle for a submitted request.

    ``event`` fires with the :class:`Lease` once nodes are assigned.
    ``cancel()`` withdraws a still-queued request (returns False if the
    lease was already granted).
    """

    def __init__(self, scheduler: "LocalScheduler", request: NodeRequest) -> None:
        self.scheduler = scheduler
        self.request = request
        self.event: Event = scheduler.env.event()
        self.state = QueuePhase.QUEUED

    def transition(self, new: QueuePhase) -> None:
        check_queue_transition(self.state, new)
        self.state = new

    @property
    def granted(self) -> bool:
        return self.event.triggered

    def cancel(self) -> bool:
        if self.granted:
            return False
        return self.scheduler._withdraw(self)

    def __repr__(self) -> str:
        return f"<PendingAllocation job={self.request.job_id!r} granted={self.granted}>"


class LocalScheduler:
    """Base class: node accounting for one machine."""

    #: Policy name published to the information service.
    policy = "abstract"

    def __init__(
        self,
        env: "Environment",
        nodes: int,
        memory: Optional[float] = None,
    ) -> None:
        if nodes <= 0:
            raise SchedulerError(f"nodes must be positive, got {nodes!r}")
        if memory is not None and memory <= 0:
            raise SchedulerError(f"memory must be positive, got {memory!r}")
        self.env = env
        self.nodes = int(nodes)
        self.free = int(nodes)
        #: Shared memory pool in MB (None = not memory-managed).
        self.memory = memory
        self.free_memory = memory if memory is not None else float("inf")
        self.leases: list[Lease] = []
        #: History of (submitted_at, granted_at, count) for prediction.
        self.history: list[tuple[float, float, int]] = []
        #: Metrics sink and site label, set by the owning Site at wiring
        #: time; standalone schedulers default to the shared no-op.
        self.metrics: MetricsRegistry = NULL_METRICS
        self.site: str = ""

    # -- API ------------------------------------------------------------------

    def submit(self, request: NodeRequest) -> PendingAllocation:
        """Queue a request; the returned handle's event fires with a Lease."""
        raise NotImplementedError

    def queue_length(self) -> int:
        """Number of requests waiting (not yet granted)."""
        raise NotImplementedError

    def estimate_wait(self, count: int, max_time: Optional[float] = None) -> float:
        """Predicted queue wait in seconds for a hypothetical request."""
        raise NotImplementedError

    # -- shared bookkeeping -----------------------------------------------------

    def _fits(self, request: NodeRequest) -> bool:
        """Do both resource dimensions fit right now?"""
        if request.count > self.free:
            return False
        if request.memory is not None and request.memory > self.free_memory:
            return False
        return True

    def _grant(self, pending: PendingAllocation) -> Lease:
        request = pending.request
        if request.count > self.free:
            raise SchedulerError(
                f"grant of {request.count} nodes with only {self.free} free"
            )
        if request.memory is not None:
            if request.memory > self.free_memory:
                raise SchedulerError(
                    f"grant of {request.memory:g} MB with only "
                    f"{self.free_memory:g} free"
                )
            self.free_memory -= request.memory
        self.free -= request.count
        lease = Lease(self, request)
        self.leases.append(lease)
        if request.submitted_at is not None:
            self.history.append(
                (request.submitted_at, self.env.now, request.count)
            )
            self.metrics.histogram("sched.queue_wait_seconds").observe(
                self.env.now - request.submitted_at,
                site=self.site, policy=self.policy,
            )
        pending.transition(QueuePhase.GRANTED)
        pending.event.succeed(lease)
        self._observe_occupancy()
        return lease

    def _on_release(self, lease: Lease) -> None:
        self.leases.remove(lease)
        self.free += lease.count
        if lease.request.memory is not None:
            self.free_memory += lease.request.memory
        self._observe_occupancy()
        self._schedule_pass()

    def _withdraw(self, pending: PendingAllocation) -> bool:
        raise NotImplementedError

    def _schedule_pass(self) -> None:
        """Re-examine the queue after state changes."""
        raise NotImplementedError

    def _observe_occupancy(self) -> None:
        """Refresh the busy-nodes and queue-depth gauges for this site."""
        self.metrics.gauge("sched.nodes_busy").set(self.busy, site=self.site)
        self.metrics.gauge("sched.queue_length").set(
            self.queue_length(), site=self.site
        )

    @property
    def busy(self) -> int:
        return self.nodes - self.free

    def utilization(self) -> float:
        return self.busy / self.nodes
