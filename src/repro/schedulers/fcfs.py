"""First-come-first-served space-sharing scheduler.

The classic production parallel machine policy: a strict FIFO queue;
the head job starts when enough nodes are free; nothing overtakes it.
This is the "local scheduler queue" whose startup delays the paper
notes dwarf wide-area barrier costs on production machines.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.schedulers.base import LocalScheduler, NodeRequest, PendingAllocation
from repro.schedulers.states import QueuePhase


class FcfsScheduler(LocalScheduler):
    """Strict FIFO space sharing."""

    policy = "fcfs"

    def __init__(self, env, nodes: int, memory=None) -> None:
        super().__init__(env, nodes, memory)
        self._queue: Deque[PendingAllocation] = deque()

    def submit(self, request: NodeRequest) -> PendingAllocation:
        from repro.errors import SchedulerError

        if request.count > self.nodes:
            raise SchedulerError(
                f"request for {request.count} nodes exceeds machine size {self.nodes}"
            )
        if (
            request.memory is not None
            and self.memory is not None
            and request.memory > self.memory
        ):
            raise SchedulerError(
                f"request for {request.memory:g} MB exceeds machine memory "
                f"{self.memory:g}"
            )
        request.submitted_at = self.env.now
        pending = PendingAllocation(self, request)
        self._queue.append(pending)
        self._schedule_pass()
        self._observe_occupancy()
        return pending

    def queue_length(self) -> int:
        return len(self._queue)

    def _withdraw(self, pending: PendingAllocation) -> bool:
        try:
            self._queue.remove(pending)
        except ValueError:
            return False
        pending.transition(QueuePhase.WITHDRAWN)
        self._schedule_pass()  # removing the head may unblock others
        self._observe_occupancy()
        return True

    def _schedule_pass(self) -> None:
        while self._queue and self._fits(self._queue[0].request):
            self._grant(self._queue.popleft())

    # -- prediction --------------------------------------------------------

    def estimate_wait(self, count: int, max_time: Optional[float] = None) -> float:
        """Plan-based wait estimate for a hypothetical (count,) request.

        Replays the current machine state forward using max_time
        estimates of running and queued jobs.  Jobs with unknown
        max_time are assumed to hold their nodes for the median known
        estimate (or 1 hour if none is known) — predictions are
        heuristic, as §2.2 expects.
        """
        return _plan_wait(self, list(self._queue), count, max_time)


#: Fallback runtime estimate when a job declared none.
DEFAULT_RUNTIME_GUESS = 3600.0


def _plan_wait(
    scheduler: LocalScheduler,
    queued: list[PendingAllocation],
    count: int,
    max_time: Optional[float],
) -> float:
    """Simulate FCFS forward to the start time of a hypothetical job."""
    now = scheduler.env.now
    known = [
        lease.request.max_time
        for lease in scheduler.leases
        if lease.request.max_time is not None
    ] + [p.request.max_time for p in queued if p.request.max_time is not None]
    if known:
        known.sort()
        guess = known[len(known) // 2]
    else:
        guess = DEFAULT_RUNTIME_GUESS

    import heapq

    # Min-heap of future release events (time, nodes) from running leases.
    releases: list[tuple[float, int]] = []
    for lease in scheduler.leases:
        runtime = lease.request.max_time or guess
        heapq.heappush(releases, (max(lease.granted_at + runtime, now), lease.count))

    free = scheduler.free
    t = now

    def start(need: int, runtime: Optional[float]) -> Optional[float]:
        """Advance time until ``need`` nodes are free; start the job."""
        nonlocal free, t
        while free < need and releases:
            end, nodes = heapq.heappop(releases)
            t = max(t, end)
            free += nodes
        if free < need:
            return None
        free -= need
        heapq.heappush(releases, (t + (runtime or guess), need))
        return t

    for pending in queued:
        if start(pending.request.count, pending.request.max_time) is None:
            return float("inf")

    started = start(count, max_time)
    if started is None:
        return float("inf")
    return max(0.0, started - now)
