"""Fork-mode "scheduler": immediate start, no admission control.

This models the configuration of the paper's microbenchmarks: "To
eliminate any source of queuing delay, GRAM was configured to respond
to allocation requests by immediately 'forking' the requested number of
processes."  A timesharing host can always fork more processes, so
requests are granted instantly and ``free`` may go negative — it tracks
oversubscription rather than enforcing a limit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.schedulers.base import Lease, LocalScheduler, NodeRequest, PendingAllocation
from repro.schedulers.states import QueuePhase

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.environment import Environment


class ForkScheduler(LocalScheduler):
    """Grants every request immediately (timesharing semantics)."""

    policy = "fork"

    def submit(self, request: NodeRequest) -> PendingAllocation:
        request.submitted_at = self.env.now
        pending = PendingAllocation(self, request)
        # Bypass _grant's capacity check: fork mode oversubscribes.
        self.free -= request.count
        lease = Lease(self, request)
        self.leases.append(lease)
        self.history.append((self.env.now, self.env.now, request.count))
        self.metrics.histogram("sched.queue_wait_seconds").observe(
            0.0, site=self.site, policy=self.policy
        )
        pending.transition(QueuePhase.GRANTED)
        pending.event.succeed(lease)
        self._observe_occupancy()
        return pending

    def queue_length(self) -> int:
        return 0

    def estimate_wait(self, count: int, max_time: Optional[float] = None) -> float:
        return 0.0

    def _withdraw(self, pending: PendingAllocation) -> bool:
        return False  # nothing is ever queued

    def _schedule_pass(self) -> None:
        pass
