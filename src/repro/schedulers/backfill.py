"""EASY backfill scheduler.

FCFS with conservative-for-the-head backfill: a job further back in the
queue may start out of order only if doing so cannot delay the *head*
job's earliest possible start (the "shadow time").  Requires wall-time
estimates; jobs submitted without ``max_time`` are never backfilled and
never overtaken past their shadow guarantee.

Included because queue-dominated startup is the regime the paper's §2.2
discusses; the reservation experiments compare against both FCFS and
backfill baselines.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.schedulers.fcfs import DEFAULT_RUNTIME_GUESS, FcfsScheduler


class EasyBackfillScheduler(FcfsScheduler):
    """FCFS + EASY backfill."""

    policy = "easy-backfill"

    def _schedule_pass(self) -> None:
        # Start head jobs in order while they fit.
        while self._queue and self._fits(self._queue[0].request):
            self._grant(self._queue.popleft())
        if not self._queue:
            return

        # Head does not fit: compute its shadow start and spare nodes.
        shadow_time, spare_at_shadow = self._shadow()
        now = self.env.now

        idx = 0
        while idx < len(self._queue):
            if idx == 0:
                idx += 1
                continue  # the head itself cannot be backfilled
            pending = self._queue[idx]
            req = pending.request
            if not self._fits(req):
                idx += 1
                continue
            runtime = req.max_time
            fits_before_shadow = (
                runtime is not None and now + runtime <= shadow_time
            )
            fits_beside_head = req.count <= spare_at_shadow
            if fits_before_shadow or fits_beside_head:
                del self._queue[idx]
                self._grant(pending)
                if not fits_before_shadow:
                    # The job persists past the shadow: it consumes spare.
                    spare_at_shadow -= req.count
                # Granting changed free; re-examine from the top in case
                # the head now fits (it cannot, free only shrank) — just
                # continue scanning from the same index.
            else:
                idx += 1

    def _shadow(self) -> tuple[float, int]:
        """(earliest start time of the head job, spare nodes at that time)."""
        head = self._queue[0].request
        free = self.free
        if head.count <= free:
            return self.env.now, free - head.count

        releases: list[tuple[float, int]] = []
        for lease in self.leases:
            runtime = lease.request.max_time or DEFAULT_RUNTIME_GUESS
            heapq.heappush(
                releases, (max(lease.granted_at + runtime, self.env.now), lease.count)
            )
        t = self.env.now
        while free < head.count and releases:
            end, nodes = heapq.heappop(releases)
            t = max(t, end)
            free += nodes
        if free < head.count:  # pragma: no cover - submit() bounds count
            return float("inf"), 0
        return t, free - head.count
