"""Queue-phase lifecycle of a local scheduler allocation request.

Every :class:`~repro.schedulers.base.PendingAllocation` moves through a
tiny state machine: it is QUEUED on submit, and leaves the queue exactly
once — GRANTED when nodes are assigned, WITHDRAWN when the requester
cancels (GRAM timeout, DUROC abort), or REFUSED when the scheduler
fails the request (e.g. a reservation window expired).  Declaring the
lifecycle as a literal table lets the ``state-machine`` static checker
verify every mutation site in ``src/repro/schedulers/``.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import SchedulerError


class QueuePhase(str, Enum):
    """Lifecycle of one allocation request inside a local scheduler."""

    #: Submitted; waiting in the scheduler's queue for nodes.
    QUEUED = "queued"
    #: Nodes assigned; a lease was issued.
    GRANTED = "granted"
    #: Withdrawn by the requester before nodes were assigned.
    WITHDRAWN = "withdrawn"
    #: Failed by the scheduler (bad reservation binding, expired window).
    REFUSED = "refused"

    @property
    def terminal(self) -> bool:
        return self is not QueuePhase.QUEUED


QUEUE_PHASE_TRANSITIONS: dict[QueuePhase, frozenset[QueuePhase]] = {
    QueuePhase.QUEUED: frozenset(
        {QueuePhase.GRANTED, QueuePhase.WITHDRAWN, QueuePhase.REFUSED}
    ),
    QueuePhase.GRANTED: frozenset(),
    QueuePhase.WITHDRAWN: frozenset(),
    QueuePhase.REFUSED: frozenset(),
}


def check_queue_transition(current: QueuePhase, new: QueuePhase) -> None:
    if new not in QUEUE_PHASE_TRANSITIONS[current]:
        raise SchedulerError(
            f"illegal queue transition {current.value} -> {new.value}"
        )
