"""Grid composition: one-stop construction of simulated testbeds.

:class:`GridBuilder` assembles an environment, network, CA, program
registry, and a set of GRAM sites; :class:`Grid` exposes co-allocator
factories and convenience accessors.  Every example, test, and
benchmark builds its world through this module.

>>> grid = (GridBuilder(seed=7)
...         .add_machine("RM1", nodes=64)
...         .add_machine("RM2", nodes=64)
...         .build())
>>> duroc = grid.duroc()
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.applib import make_program
from repro.core.atomic import Grab
from repro.core.coallocator import Duroc
from repro.errors import ReproError
from repro.faults import FaultSpec, schedule as schedule_faults
from repro.gram.client import GramClient
from repro.gram.costs import CostModel
from repro.gram.site import Site
from repro.gsi.credentials import CertificateAuthority, Credential
from repro.machine.host import Machine, Program
from repro.net.network import LatencyModel, Network
from repro.schedulers.backfill import EasyBackfillScheduler
from repro.schedulers.fcfs import FcfsScheduler
from repro.schedulers.fork import ForkScheduler
from repro.schedulers.reservation import ReservationScheduler
from repro.simcore.environment import Environment
from repro.simcore.equeue import EventQueue
from repro.simcore.probe import FanoutProbe, Probe
from repro.simcore.rng import RngRegistry
from repro.simcore.tracing import NullTracer, SpanSink, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.flightrec import FlightRecorder
    from repro.prof.counters import OpCounters
    from repro.verify.recorder import Recorder

SCHEDULERS = {
    "fork": ForkScheduler,
    "fcfs": FcfsScheduler,
    "backfill": EasyBackfillScheduler,
    "reservation": ReservationScheduler,
}

#: The default executable name registered on every grid.
DEFAULT_EXECUTABLE = "duroc_app"

#: The client workstation host name.
CLIENT_HOST = "client"


class Grid:
    """A built testbed: environment, network, sites, identities."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        ca: CertificateAuthority,
        credential: Credential,
        sites: dict[str, Site],
        programs: dict[str, Program],
        costs: CostModel,
        rngs: RngRegistry,
        tracer: Tracer,
        client_host: str = CLIENT_HOST,
        recorder: "Optional[Recorder]" = None,
        counters: "Optional[OpCounters]" = None,
        flightrec: "Optional[FlightRecorder]" = None,
    ) -> None:
        self.env = env
        self.network = network
        self.ca = ca
        self.credential = credential
        self.sites = sites
        self.programs = programs
        self.costs = costs
        self.rngs = rngs
        self.tracer = tracer
        self.client_host = client_host
        #: The runtime-verification recorder observing this grid, if the
        #: builder attached one (see :meth:`GridBuilder.with_monitors`).
        self.recorder = recorder
        #: The op-count probe observing this grid, if the builder
        #: attached one (see :meth:`GridBuilder.with_profiling`).
        self.counters = counters
        #: The black-box flight recorder observing this grid, if the
        #: builder attached one (see :mod:`repro.obs.flightrec`).
        self.flightrec = flightrec

    # -- accessors -------------------------------------------------------------

    def site(self, name: str) -> Site:
        try:
            return self.sites[name]
        except KeyError:
            raise ReproError(f"unknown site {name!r}") from None

    def machine(self, name: str) -> Machine:
        return self.site(name).machine

    def contacts(self) -> list[str]:
        return [site.contact for site in self.sites.values()]

    # -- factories --------------------------------------------------------------

    def duroc(self, **kwargs) -> Duroc:
        """An interactive-transaction co-allocator on the client host.

        Pass ``retry=RetryPolicy(...)`` to enable bounded, jittered
        resubmission; jitter draws from the grid's seeded
        ``resilience.retry`` stream unless an ``rng`` is given.
        """
        kwargs.setdefault("auth", self.costs.auth)
        kwargs.setdefault("tracer", self.tracer)
        kwargs.setdefault("rng", self.rngs.stream("resilience.retry"))
        return Duroc(self.network, self.client_host, self.credential, **kwargs)

    def grab(self, **kwargs) -> Grab:
        """An atomic-transaction co-allocator on the client host."""
        kwargs.setdefault("auth", self.costs.auth)
        kwargs.setdefault("tracer", self.tracer)
        kwargs.setdefault("rng", self.rngs.stream("resilience.retry"))
        return Grab(self.network, self.client_host, self.credential, **kwargs)

    def gram_client(self) -> GramClient:
        return GramClient(
            self.network, self.client_host, self.credential,
            auth=self.costs.auth, tracer=self.tracer,
        )

    # -- execution ---------------------------------------------------------------

    def run(self, until=None):
        """Run the simulation (see :meth:`Environment.run`)."""
        return self.env.run(until=until)

    def process(self, generator, name: Optional[str] = None):
        return self.env.process(generator, name=name)

    @property
    def now(self) -> float:
        return self.env.now

    def __repr__(self) -> str:
        return f"<Grid sites={sorted(self.sites)} t={self.env.now:g}>"


class GridBuilder:
    """Fluent construction of a :class:`Grid`."""

    def __init__(
        self,
        seed: int = 0,
        latency: float = 0.002,
        latency_jitter_cv: float = 0.0,
        costs: Optional[CostModel] = None,
        user: str = "alice",
        client_host: str = CLIENT_HOST,
        trace: bool = True,
        queue: "str | EventQueue | None" = None,
        slotted_delivery: bool = False,
        slot_width: Optional[float] = None,
    ) -> None:
        self.seed = seed
        self.latency = latency
        self.latency_jitter_cv = latency_jitter_cv
        self.costs = costs or CostModel()
        self.user = user
        self.client_host = client_host
        #: ``trace=False`` builds the grid on a NullTracer: no spans, no
        #: metrics, identical simulation behaviour (tested).
        self.trace = trace
        #: Kernel event-queue selection, forwarded to
        #: :class:`~repro.simcore.environment.Environment` — ``None`` /
        #: ``"heap"`` / ``"calendar"`` or an
        #: :class:`~repro.simcore.equeue.EventQueue` instance.
        self.queue = queue
        #: Forwarded to :class:`~repro.net.network.Network`: coalesce
        #: same-deadline deliveries into one kernel event per
        #: (destination, deadline) slot.  Opt-in — see the Network
        #: docstring for the (same-instant ordering) caveat.
        self.slotted_delivery = slotted_delivery
        self.slot_width = slot_width
        self._machines: list[dict] = []
        self._programs: dict[str, Program] = {}
        self._faults: list[FaultSpec] = []
        self._probes: list[Probe] = []
        self._span_sink: Optional[SpanSink] = None

    def add_machine(
        self,
        name: str,
        nodes: int,
        scheduler: str = "fork",
        speed: float = 1.0,
        costs: Optional[CostModel] = None,
        memory: Optional[float] = None,
    ) -> "GridBuilder":
        """Declare a site; ``scheduler`` is one of fork/fcfs/backfill/reservation.

        ``memory`` (MB) enables §2.1-style processors+memory co-allocation
        at the local scheduler.
        """
        if scheduler not in SCHEDULERS:
            raise ReproError(
                f"unknown scheduler {scheduler!r}; pick from {sorted(SCHEDULERS)}"
            )
        self._machines.append(
            dict(name=name, nodes=nodes, scheduler=scheduler, speed=speed,
                 costs=costs, memory=memory)
        )
        return self

    def add_machines(
        self, prefix: str, count: int, nodes: int, **kwargs
    ) -> "GridBuilder":
        """Declare ``count`` identical sites named ``prefix``1..N."""
        for idx in range(1, count + 1):
            self.add_machine(f"{prefix}{idx}", nodes=nodes, **kwargs)
        return self

    def program(self, name: str, program: Program) -> "GridBuilder":
        """Register an executable available on every site."""
        self._programs[name] = program
        return self

    def with_faults(self, *specs: FaultSpec) -> "GridBuilder":
        """Declare faults to install on the built grid.

        Accepts any :class:`repro.faults.FaultSpec`; they are validated
        and scheduled by :func:`repro.faults.schedule` as part of
        :meth:`build`, drawing stochastic faults from the grid's seeded
        RNG registry.
        """
        self._faults.extend(specs)
        return self

    def with_probe(self, *observers: "Probe | SpanSink") -> "GridBuilder":
        """Attach observers to the built grid — the one composable seam.

        Accepts any mix of :class:`~repro.simcore.probe.Probe`
        subclasses (recorders, op counters, custom probes) and at most
        one :class:`~repro.simcore.tracing.SpanSink`.  Probes observe
        the kernel and network in attachment order through an
        automatic :class:`~repro.simcore.probe.FanoutProbe` — callers
        never compose fanout by hand.  Observers are observation-only
        (no scheduled events, no random draws), so the simulation stays
        byte-identical to an unobserved run.

        ``with_monitors`` / ``with_profiling`` / ``with_span_sink`` are
        thin delegates of this method; to attach more than one sink,
        compose them with
        :class:`~repro.obs.streaming.TelemetryPipeline` first.
        """
        for observer in observers:
            # A dual-role observer (Probe *and* SpanSink, e.g. a
            # FlightRecorder) registers in both seams.
            matched = False
            if isinstance(observer, SpanSink):
                if self._span_sink is not None and self._span_sink is not observer:
                    raise ReproError(
                        "a grid streams through one span sink; compose sinks "
                        "with repro.obs.streaming.TelemetryPipeline"
                    )
                self._span_sink = observer
                matched = True
            if isinstance(observer, Probe):
                if observer not in self._probes:
                    self._probes.append(observer)
                matched = True
            if not matched:
                raise ReproError(
                    f"with_probe() takes Probe or SpanSink observers, "
                    f"got {observer!r}"
                )
        return self

    def with_monitors(
        self, recorder: "Optional[Recorder]" = None
    ) -> "GridBuilder":
        """Attach a runtime-verification recorder to the built grid.

        Delegates to :meth:`with_probe`.  The recorder (a fresh one
        unless given) observes every message send/delivery/drop and
        every instrumented protocol event under vector clocks, ready
        for :func:`repro.verify.evaluate`.
        """
        if recorder is None:
            from repro.verify.recorder import Recorder

            recorder = Recorder()
        return self.with_probe(recorder)

    def with_profiling(
        self, counters: "Optional[OpCounters]" = None
    ) -> "GridBuilder":
        """Attach machine-independent op counters to the built grid.

        Delegates to :meth:`with_probe`.  The counters (fresh
        :class:`~repro.prof.counters.OpCounters` unless given) observe
        events processed, queue high-water, and message traffic without
        perturbing the run.
        """
        if counters is None:
            from repro.prof.counters import OpCounters

            counters = OpCounters()
        return self.with_probe(counters)

    def with_span_sink(self, sink: SpanSink) -> "GridBuilder":
        """Stream the grid's telemetry through ``sink``.

        Delegates to :meth:`with_probe`.  The built tracer routes every
        completed span and mark through the sink (sampling,
        bounded-memory aggregation, and incremental JSONL export live
        in :mod:`repro.obs.streaming`) and meters itself.  Call
        ``grid.tracer.close()`` after the run to flush the sink.
        Ignored when ``trace=False``.
        """
        return self.with_probe(sink)

    def build(self) -> Grid:
        if not self._machines:
            raise ReproError("a grid needs at least one machine")
        env = Environment(queue=self.queue)
        probes = self._probes
        recorder: "Optional[Recorder]" = None
        counters: "Optional[OpCounters]" = None
        flightrec: "Optional[FlightRecorder]" = None
        if probes:
            from repro.obs.flightrec import FlightRecorder
            from repro.prof.counters import OpCounters
            from repro.verify.recorder import Recorder

            for probe in probes:
                # Recorders need the environment for vector-clock time.
                bind = getattr(probe, "bind", None)
                if bind is not None:
                    bind(env)
                if recorder is None and isinstance(probe, Recorder):
                    recorder = probe
                if counters is None and isinstance(probe, OpCounters):
                    counters = probe
                if flightrec is None and isinstance(probe, FlightRecorder):
                    flightrec = probe
        if len(probes) == 1:
            env.probe = probes[0]
        elif probes:
            env.probe = FanoutProbe(probes)
        rngs = RngRegistry(self.seed)
        latency_model = LatencyModel(
            base=self.latency,
            jitter_cv=self.latency_jitter_cv,
            rng=rngs.stream("net.latency") if self.latency_jitter_cv else None,
        )
        tracer = (
            Tracer(env, sink=self._span_sink) if self.trace else NullTracer(env)
        )
        network = Network(
            env,
            latency_model,
            metrics=tracer.metrics,
            slotted=self.slotted_delivery,
            slot_width=self.slot_width,
        )
        network.add_host(self.client_host)
        ca = CertificateAuthority()
        credential = ca.issue(self.user)

        programs: dict[str, Program] = {
            DEFAULT_EXECUTABLE: make_program(startup=self.costs.app_startup),
        }
        programs.update(self._programs)

        sites: dict[str, Site] = {}
        for spec in self._machines:
            site = Site(
                env=env,
                network=network,
                name=spec["name"],
                nodes=spec["nodes"],
                ca=ca,
                programs=programs,
                scheduler_factory=SCHEDULERS[spec["scheduler"]],
                costs=spec["costs"] or self.costs,
                speed=spec["speed"],
                memory=spec["memory"],
                tracer=tracer,
            )
            site.authorize(self.user)
            sites[spec["name"]] = site

        grid = Grid(
            env=env,
            network=network,
            ca=ca,
            credential=credential,
            sites=sites,
            programs=programs,
            costs=self.costs,
            rngs=rngs,
            tracer=tracer,
            client_host=self.client_host,
            recorder=recorder,
            counters=counters,
            flightrec=flightrec,
        )
        if self._faults:
            schedule_faults(env, grid, self._faults)
        return grid
