#!/usr/bin/env python
"""MPI across machines, started through DUROC — the MPICH-G pattern.

The application below is plain message-passing code: it sees a
communicator with ranks and collectives and contains **no DUROC
calls** — "all DUROC calls are hidden in the MPI library".  The
launcher co-allocates three machines; because the subjobs are marked
interactive, the same program also starts when one machine is dead,
reconfiguring "the MPI job at startup to overcome resource failure".

The computation: a master/worker estimation of π by numerical
integration, with the work scattered by rank and reduced back.

Run:  python examples/mpi_master_worker.py
"""

from repro.core import SubjobType
from repro.gridenv import GridBuilder
from repro.mpi import mpiexec

INTERVALS = 100_000


def pi_main(ctx, comm):
    """Plain MPI-style program: no co-allocation code anywhere."""
    # Every rank integrates its slice of 4/(1+x^2) on [0, 1].
    h = 1.0 / INTERVALS
    local = 0.0
    for i in range(comm.rank, INTERVALS, comm.size):
        x = h * (i + 0.5)
        local += 4.0 / (1.0 + x * x)
    local *= h

    pi = yield from comm.allreduce(local)
    names = yield from comm.gather(ctx.machine.name)
    if comm.rank == 0:
        import math

        print(f"  world size {comm.size}, machines used: "
              f"{sorted(set(names))}")
        print(f"  pi ≈ {pi:.10f}   (error {abs(pi - math.pi):.2e})")
    return pi


def launch(grid, crash_last: bool) -> None:
    label = "one machine dead" if crash_last else "all machines healthy"
    print(f"\n=== {label} ===")
    if crash_last:
        grid.site("RM3").crash()

    def agent(env):
        run = yield from mpiexec(
            grid,
            layout=[(grid.site(f"RM{i}").contact, 4) for i in (1, 2, 3)],
            main=pi_main,
            duroc=grid.duroc(submit_timeout=5.0),
            subjob_type=SubjobType.INTERACTIVE,
        )
        print(f"  released at t={run.result.released_at:.2f}s "
              f"with subjob sizes {run.sizes}")
        return run

    grid.run(grid.process(agent(grid.env)))
    grid.run()  # let the application itself finish


def main() -> None:
    launch(
        GridBuilder(seed=1).add_machines("RM", 3, nodes=32).build(),
        crash_last=False,
    )
    launch(
        GridBuilder(seed=2).add_machines("RM", 3, nodes=32).build(),
        crash_last=True,
    )


if __name__ == "__main__":
    main()
