#!/usr/bin/env python
"""Local scheduling policy study under a realistic workload.

§2.2's strategies (forecasts, reservations) all sit on top of *local*
scheduler behaviour.  This example generates one day of synthetic
batch load — power-of-two-biased sizes, lognormal runtimes, a day/night
arrival cycle, overestimated user runtimes — and replays the identical
trace through the three space-sharing policies:

* strict FCFS,
* EASY backfill (what production machines of the era adopted),
* the reservation-capable scheduler with a co-allocation window booked
  mid-day (showing what a §5 reservation costs the local queue).

Run:  python examples/workload_study.py
"""

from repro.gridenv import GridBuilder
from repro.workloads import TraceReplayer, WorkloadModel

NODES = 64
HORIZON = 43_200.0  # half a simulated day of arrivals
MODEL = WorkloadModel(
    max_nodes=NODES,
    peak_interarrival=110.0,
    night_factor=3.0,
)


def run_policy(policy: str, book_window: bool = False):
    grid = (
        GridBuilder(seed=2026)
        .add_machine("m", nodes=NODES, scheduler=policy)
        .build()
    )
    jobs = list(MODEL.generate(grid.rngs.stream("trace"), horizon=HORIZON))
    replayer = TraceReplayer(grid.site("m"), jobs)
    if book_window:
        # A co-allocator books half the machine for 30 min at noon.
        grid.site("m").scheduler.reserve(
            count=NODES // 2, start=HORIZON / 2, duration=1800.0
        )
    grid.run(until=HORIZON * 4)  # generous drain
    return jobs, replayer.stats


def main() -> None:
    print(f"Workload: {NODES}-node machine, "
          f"{HORIZON / 3600:.0f} h of arrivals, day/night cycle\n")

    rows = []
    jobs, fcfs = run_policy("fcfs")
    rows.append(("FCFS", fcfs))
    _, easy = run_policy("backfill")
    rows.append(("EASY backfill", easy))
    _, resv = run_policy("reservation", book_window=True)
    rows.append(("FCFS + booked co-allocation window", resv))

    total_nodes = sum(j.nodes for j in jobs)
    print(f"trace: {len(jobs)} jobs, {total_nodes} node-requests, "
          f"median runtime "
          f"{sorted(j.runtime for j in jobs)[len(jobs) // 2]:.0f}s\n")

    print(f"{'policy':<36} {'completed':>9} {'mean wait':>10} {'p95 wait':>10}")
    for name, stats in rows:
        print(f"{name:<36} {stats.completed:>9} "
              f"{stats.mean_wait:>9.0f}s {stats.p95_wait:>9.0f}s")

    speedup = (
        rows[0][1].mean_wait / rows[1][1].mean_wait
        if rows[1][1].mean_wait else float("inf")
    )
    print(f"\nbackfill cuts the mean wait {speedup:.1f}x on this trace; "
          "the booked window adds modest queue delay —\n"
          "the local price of a guaranteed §5 co-allocation start.")


if __name__ == "__main__":
    main()
