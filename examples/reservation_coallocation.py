#!/usr/bin/env python
"""Advance co-reservation on busy machines (§2.2 / §5 extension).

Two space-shared machines carry other users' background load; a
computation wants 32 nodes on *each*, simultaneously.

* Best-effort: each subjob queues independently; whichever machine
  frees first holds its nodes idle at the barrier until the other
  catches up.
* Co-reservation: forecast both queues, book a common window, start
  together with zero idle barrier time — the paper's §5 direction.

Run:  python examples/reservation_coallocation.py
"""

from repro.experiments.reservations import (
    render,
    run_once,
    run_reservation_experiment,
)


def main() -> None:
    print("One realization, narrated:\n")
    for strategy in ("best-effort", "reservation"):
        row = run_once(strategy, seed=0)
        idle = row.barrier_idle_node_seconds
        print(f"  {strategy:>12}: released {row.released_at:7.1f}s after "
              f"submission, {idle:9.1f} node-seconds held idle at the barrier")

    print("\nAveraged over seeds:\n")
    rows = run_reservation_experiment(seeds=(0, 1, 2))
    print(render(rows))
    print(
        "\nReservations trade a conservative (forecast-based) start time "
        "for a guaranteed simultaneous start and zero wasted node-time."
    )


if __name__ == "__main__":
    main()
