#!/usr/bin/env python
"""Co-allocating computers AND network elements.

The paper opens with applications needing "several computers and
network elements ... in order to achieve real-time reconstruction of
experimental data" — its §2 defines resources to include networks and
display devices.  This example assembles such an ensemble through the
ordinary DUROC mechanisms:

* a required instrument subjob (the X-ray source),
* a required reconstruction cluster subjob (32 processes),
* a required *network element*: 600 Mb/s from the beamline to the
  cluster, granted by a bandwidth broker and pinned by a QoS agent
  that participates in the two-phase commit like any other subjob,
* two optional display stations that join as they become active.

A competing transfer then hogs the link, and the same request is
retried: the network element reports failure at the barrier and the
interactive handler downgrades the flow to 200 Mb/s — application-
defined failure handling across heterogeneous resources.

Run:  python examples/teleimmersion.py
"""

from repro.core import CoAllocationRequest, SubjobSpec, SubjobType, make_program
from repro.gridenv import GridBuilder
from repro.netqos import (
    BandwidthBroker,
    FlowSpec,
    PARAM_BANDWIDTH,
    PARAM_DST,
    PARAM_SRC,
    make_qos_agent,
)


def build_world():
    grid = (
        GridBuilder(seed=99)
        .add_machine("beamline", nodes=1)
        .add_machine("cluster", nodes=64)
        .add_machine("display-east", nodes=1)
        .add_machine("display-west", nodes=1)
        .build()
    )
    grid.programs["instrument"] = make_program(startup=1.0, runtime=20.0)
    grid.programs["reconstruct"] = make_program(startup=2.0, runtime=20.0)
    grid.programs["viewer"] = make_program(startup=4.0, runtime=20.0)

    broker = BandwidthBroker(grid.env)
    broker.add_link("beamline", "cluster", capacity=1000.0)
    grid.programs["qos_agent"] = make_qos_agent(broker)
    return grid, broker


def request_for(grid, bandwidth):
    return CoAllocationRequest(
        [
            SubjobSpec(contact=grid.site("beamline").contact, count=1,
                       executable="instrument"),
            SubjobSpec(contact=grid.site("cluster").contact, count=32,
                       executable="reconstruct"),
            SubjobSpec(
                contact=grid.site("cluster").contact, count=1,
                executable="qos_agent",
                start_type=SubjobType.INTERACTIVE,
                environment={
                    PARAM_SRC: "beamline",
                    PARAM_DST: "cluster",
                    PARAM_BANDWIDTH: bandwidth,
                    "qos.hold": 20.0,
                },
            ),
            SubjobSpec(contact=grid.site("display-east").contact, count=1,
                       executable="viewer", start_type=SubjobType.OPTIONAL),
            SubjobSpec(contact=grid.site("display-west").contact, count=1,
                       executable="viewer", start_type=SubjobType.OPTIONAL),
        ]
    )


def run_session(grid, broker, label, bandwidth):
    print(f"=== {label} ===")
    duroc = grid.duroc()
    downgrades = []

    def agent(env):
        job = duroc.submit(request_for(grid, bandwidth))

        def handler(job, slot, notification):
            new_bw = float(slot.spec.environment[PARAM_BANDWIDTH]) / 3
            print(f"  t={env.now:5.1f}s  network element failed "
                  f"({notification.detail}); downgrading to {new_bw:g} Mb/s")
            spec = SubjobSpec(
                contact=slot.spec.contact, count=1, executable="qos_agent",
                start_type=SubjobType.INTERACTIVE,
                environment=dict(slot.spec.environment,
                                 **{PARAM_BANDWIDTH: new_bw}),
            )
            job.substitute(slot, spec)
            downgrades.append(new_bw)

        job.set_interactive_handler(handler)
        result = yield from job.commit()
        free = broker.available("beamline", "cluster")
        print(f"  t={env.now:5.1f}s  released: subjob sizes {result.sizes}; "
              f"link now has {free:g} Mb/s free")
        return result

    grid.run(grid.process(agent(grid.env)))
    grid.run()
    print()
    return downgrades


def main() -> None:
    grid, broker = build_world()
    run_session(grid, broker, "clean link, 600 Mb/s requested", 600.0)

    # A competing bulk transfer grabs most of the link.
    competing = broker.allocate(FlowSpec("beamline", "cluster", 900.0))
    downgrades = run_session(
        grid, broker, "congested link (900 Mb/s in use), 600 Mb/s requested",
        600.0,
    )
    competing.release()
    print(f"downgrades performed: {downgrades}")


if __name__ == "__main__":
    main()
