#!/usr/bin/env python
"""The paper's §2 motivating scenario, reproduced end to end.

    "A large distributed simulation requires 400 processors ...  Five
    computers are identified ...  one of the computers turns out to be
    unavailable due to a system crash.  This failure is handled by
    dropping that computer from the ensemble and adding another,
    located dynamically.  ...  after five minutes the fifth system has
    not joined them ...  The solution adopted in this case is to drop
    the 'faulty' system from the ensemble, and proceed with just four
    systems, at a decreased level of simulation fidelity, but with the
    same completion time."

Six 128-node machines exist (five planned + one spare).  ``sim2`` is
already down, ``sim5`` is overloaded and will miss its startup
deadline.  The interactive-transaction strategy substitutes the crash
and drops the straggler.

Run:  python examples/distributed_simulation.py
"""

from repro.broker import InteractiveAgent
from repro.core import DurocEvent
from repro.workloads import motivating_scenario


def main() -> None:
    scenario = motivating_scenario(seed=7)
    grid = scenario.grid
    print("Grid:")
    for name in sorted(grid.sites):
        machine = grid.machine(name)
        status = (
            "CRASHED" if machine.crashed
            else f"overloaded x{machine.load_factor:g}" if machine.load_factor > 1
            else "healthy"
        )
        print(f"  {name}: {machine.nodes} nodes, {status}")
    print(f"\nRequest: {scenario.request.total_processes()} processors "
          f"over {len(scenario.request)} machines "
          f"(interactive, 90 s startup deadline)\n")

    duroc = grid.duroc(submit_timeout=10.0)
    agent = InteractiveAgent(duroc, spares=[grid.site("sim6").contact])

    def run(env):
        outcome = yield from agent.allocate(scenario.request)
        return outcome

    # Narrate the co-allocation as it happens.
    def attach_narration():
        # The agent creates the job on first run step; poll until it exists.
        def narrate(env):
            while not duroc.jobs:
                yield env.timeout(0.01)
            duroc.jobs[0].on(None, lambda n: print(
                f"  t={n.time:7.2f}s  {n.event.value}"
                + (f" subjob={n.subjob}" if n.subjob is not None else "")
                + (f"  [{n.detail}]" if n.detail else "")
            ))

        grid.process(narrate(grid.env))

    attach_narration()
    outcome = grid.run(grid.process(run(grid.env)))

    print("\nOutcome:")
    print(f"  success:       {outcome.success}")
    print(f"  substitutions: {outcome.substitutions}")
    print(f"  dropped:       {outcome.dropped}")
    print(f"  processors:    {outcome.started_processes} of 400 "
          "(decreased fidelity, same completion time)")
    print(f"  time to start: {outcome.elapsed:.1f} s")
    for line in outcome.log:
        print(f"  log: {line}")

    job = duroc.jobs[0]
    timeouts = job.callbacks.events(DurocEvent.SUBJOB_TIMEOUT)
    print(f"\n{len(timeouts)} subjob(s) missed the startup deadline and "
          "were dropped — the computation proceeded anyway.")


if __name__ == "__main__":
    main()
