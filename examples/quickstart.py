#!/usr/bin/env python
"""Quickstart: co-allocate a master/worker computation across three sites.

This is the paper's Figure 1 example end to end:

* a required ``master`` subjob on RM1,
* interactive ``worker`` subjobs on RM2 and RM3,
* written in actual RSL text, submitted through DUROC, and released via
  the two-phase-commit barrier.

Run:  python examples/quickstart.py

Besides the console narration, the run exports its trace and metrics to
``results/quickstart_trace.jsonl`` / ``results/quickstart_metrics.json``
for inspection with ``python -m repro.obs``, and its cost profile to
``results/quickstart_profile.json`` (plus a collapsed-stack
``.collapsed`` for flamegraph tools) for ``python -m repro.prof``.
"""

from pathlib import Path

from repro.core import CoAllocationRequest, DurocEvent, make_program
from repro.gridenv import GridBuilder
from repro.obs.export import write_jsonl, write_metrics
from repro.prof import profile_grid, write_collapsed
from repro.rsl import pretty
from repro.verify import EventLog, RunContext, all_monitors, evaluate

RESULTS = Path(__file__).resolve().parent.parent / "results"


def body(ctx, port, config):
    """What every process does once the co-allocation is released."""
    print(
        f"  t={ctx.now:6.2f}s  {ctx.machine.name}: process started as "
        f"global rank {config.global_rank()} "
        f"(subjob {config.my_subjob}, local rank {config.my_rank}, "
        f"world size {config.total_processes})"
    )
    yield ctx.env.timeout(1.0)  # the actual computation
    return config.global_rank()


def main() -> None:
    # 1. Build a simulated grid: three independently administered sites,
    #    with the runtime-verification recorder attached so this run is
    #    also a checked execution (see ``python -m repro.verify``).
    grid = (
        GridBuilder(seed=42)
        .add_machine("RM1", nodes=16)
        .add_machine("RM2", nodes=64)
        .add_machine("RM3", nodes=64)
        .program("master", make_program(startup=0.5, body=body))
        .program("worker", make_program(startup=0.5, body=body))
        .with_monitors()
        .with_profiling()
        .build()
    )

    # 2. Express the co-allocation in RSL (the paper's Figure 1).
    rsl_text = """
    +(&(resourceManagerContact=RM1:gatekeeper)
       (count=1)(executable=master)
       (subjobStartType=required))
     (&(resourceManagerContact=RM2:gatekeeper)
       (count=4)(executable=worker)
       (subjobStartType=interactive))
     (&(resourceManagerContact=RM3:gatekeeper)
       (count=4)(executable=worker)
       (subjobStartType=interactive))
    """
    request = CoAllocationRequest.from_rsl(rsl_text)
    print("Submitting RSL request:")
    print(pretty(request.to_rsl()))
    print()

    # 3. Submit through the interactive co-allocator and commit.
    duroc = grid.duroc()

    def agent(env):
        job = duroc.submit(request)
        job.on(None, lambda n: print(
            f"  t={n.time:6.2f}s  callback: {n.event.value}"
            + (f" (subjob {n.subjob})" if n.subjob is not None else "")
        ))
        result = yield from job.commit()
        print()
        print(
            f"Released at t={result.released_at:.2f}s: "
            f"{result.total_processes} processes in {len(result.sizes)} "
            f"subjobs {result.sizes}"
        )
        yield from job.wait_done()
        print(f"Computation finished at t={env.now:.2f}s")
        return result

    grid.run(grid.process(agent(grid.env)))

    # 4. Inspect the monitoring log (§3.4).
    job = duroc.jobs[0]
    checkins = job.callbacks.events(DurocEvent.SUBJOB_CHECKIN)
    print(f"\n{len(checkins)} subjobs checked into the barrier; "
          f"request ended in state {job.state.value!r}")

    # 5. Evaluate the protocol monitors over the recorded run: vector
    #    clocks + happens-before race/2PC/deadlock checks.
    recorder = grid.recorder
    findings = evaluate(
        all_monitors(),
        EventLog(recorder.events),
        RunContext(
            run_id="quickstart",
            queue_exhausted=recorder.queue_exhausted,
            end_time=grid.now,
        ),
    )
    print(
        f"Runtime verification: {len(recorder.events)} events recorded, "
        f"{len(findings)} protocol finding(s)"
    )
    for finding in findings:
        print(f"  {finding.rule}: {finding.message}")

    # 6. Export the trace and metrics for ``python -m repro.obs``, and
    #    the cost profile for ``python -m repro.prof``.
    trace_path = write_jsonl(grid.tracer, RESULTS / "quickstart_trace.jsonl")
    metrics_path = write_metrics(
        grid.tracer.metrics.snapshot(), RESULTS / "quickstart_metrics.json"
    )
    profile = profile_grid(grid, meta={"source": "examples/quickstart.py", "seed": 42})
    profile_path = profile.write(RESULTS / "quickstart_profile.json")
    collapsed_path = write_collapsed(profile, RESULTS / "quickstart_profile.collapsed")
    print(f"Trace written to {trace_path}")
    print(f"Metrics written to {metrics_path}")
    print(f"Profile written to {profile_path}")
    print(f"Collapsed stacks written to {collapsed_path}")


if __name__ == "__main__":
    main()
